// E10 — Microbenchmarks of the merge pipeline (paper §3.2, Fig. 3) and its
// supporting machinery: trace encode/decode, deterministic-branch replay,
// LCA tree merge, frontier enumeration, bit-vector primitives, and the
// bounded constraint solver.
//
// These establish that the hive-side per-trace cost is microseconds — the
// quantitative footing for "aggregate executions across the lifetime of a
// program" being a tractable volume of work.
#include <benchmark/benchmark.h>

#include "bench_json_gbench.h"

#include "core/softborg.h"

namespace softborg {
namespace {

Trace sample_trace(std::size_t bits, std::uint64_t seed) {
  Rng rng(seed);
  Trace t;
  t.id = TraceId(seed);
  t.program = ProgramId(1);
  t.pod = PodId(rng.next_below(1000));
  t.outcome = Outcome::kOk;
  for (std::size_t i = 0; i < bits; ++i) t.branch_bits.push_back(rng.next_bool());
  t.steps = bits * 10;
  return t;
}

void BM_TraceEncode(benchmark::State& state) {
  const Trace t = sample_trace(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_trace(t));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceEncode)->Arg(16)->Arg(256)->Arg(4096);

void BM_TraceDecode(benchmark::State& state) {
  const Bytes wire =
      encode_trace(sample_trace(static_cast<std::size_t>(state.range(0)), 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_trace(wire));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceDecode)->Arg(16)->Arg(256)->Arg(4096);

void BM_InterpreterRun(benchmark::State& state) {
  const auto entry = make_media_parser();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ExecConfig cfg;
    cfg.inputs = {static_cast<Value>(seed % 64),
                  static_cast<Value>(seed % 256)};
    cfg.seed = seed++;
    benchmark::DoNotOptimize(execute(entry.program, cfg));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_InterpreterRun);

void BM_Replay(benchmark::State& state) {
  const auto entry = make_media_parser();
  ExecConfig cfg;
  cfg.inputs = {20, 100};
  const auto live = execute(entry.program, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(replay_trace(entry.program, live.trace));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Replay);

void BM_TreeMergePath(benchmark::State& state) {
  // Merge random 2^14-path decision streams into a growing tree. (The
  // legacy-vs-arena comparison on the fleet workload lives in
  // bench_tree_v2.cpp as BM_TreeMerge/BM_TreeQuery.)
  const unsigned k = 14;
  Rng rng(3);
  std::vector<std::vector<SymDecision>> paths;
  for (int i = 0; i < 4096; ++i) {
    std::vector<SymDecision> p;
    for (unsigned j = 0; j < k; ++j) p.push_back({j, rng.next_bool()});
    paths.push_back(std::move(p));
  }
  ExecTree tree(ProgramId(1));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.add_path(paths[i++ % paths.size()], Outcome::kOk));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TreeMergePath);

void BM_TreeFrontier(benchmark::State& state) {
  const unsigned k = 12;
  Rng rng(3);
  ExecTree tree(ProgramId(1));
  for (int i = 0; i < 2000; ++i) {
    std::vector<SymDecision> p;
    for (unsigned j = 0; j < k; ++j) p.push_back({j, rng.next_bool()});
    tree.add_path(p, Outcome::kOk);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.frontier(64));
  }
}
BENCHMARK(BM_TreeFrontier);

void BM_BitVecCommonPrefix(benchmark::State& state) {
  Rng rng(5);
  BitVec a, b;
  for (int i = 0; i < 4096; ++i) {
    const bool bit = rng.next_bool();
    a.push_back(bit);
    b.push_back(i < 4000 ? bit : !bit);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.common_prefix(b));
  }
}
BENCHMARK(BM_BitVecCommonPrefix);

void BM_ConstraintSolve(benchmark::State& state) {
  // The media_parser crash region constraint.
  PathConstraint pc;
  pc.push_back({make_bin(BinOp::kEq, make_input(0), make_const(13)), true});
  pc.push_back({make_bin(BinOp::kLt, make_input(1), make_const(200)), false});
  const std::vector<VarDomain> domains = {{0, 63}, {0, 255}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_path(pc, domains));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ConstraintSolve);

void BM_SymbolicExplore(benchmark::State& state) {
  const auto entry = make_media_parser();
  for (auto _ : state) {
    ExploreOptions opt;
    opt.input_domains = domains_of(entry);
    SymbolicExecutor ex(entry.program, opt);
    benchmark::DoNotOptimize(ex.explore());
  }
}
BENCHMARK(BM_SymbolicExplore);

void BM_TreeCodecRoundTrip(benchmark::State& state) {
  Rng rng(9);
  ExecTree tree(ProgramId(1));
  for (int i = 0; i < 1000; ++i) {
    std::vector<SymDecision> p;
    for (unsigned j = 0; j < 12; ++j) p.push_back({j, rng.next_bool()});
    tree.add_path(p, Outcome::kOk);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_tree(encode_tree(tree)));
  }
}
BENCHMARK(BM_TreeCodecRoundTrip);

// Batch ingestion workload: n mixed-program traces from the standard corpus
// with random in-domain inputs and unique ids (dedup passes every wire).
const std::vector<Bytes>& mixed_workload() {
  static const std::vector<Bytes> wires = [] {
    const auto corpus = standard_corpus();
    Rng rng(21);
    std::vector<Bytes> out;
    out.reserve(4096);
    for (std::size_t i = 0; i < 4096; ++i) {
      const CorpusEntry& entry = corpus[rng.next_below(corpus.size())];
      ExecConfig cfg;
      for (const auto& d : entry.domains) {
        cfg.inputs.push_back(rng.next_in(d.lo, d.hi));
      }
      cfg.seed = i + 1;
      auto result = execute(entry.program, cfg);
      result.trace.id = TraceId(i + 1);
      out.push_back(encode_trace(result.trace));
    }
    return out;
  }();
  return wires;
}

// Arg(0): serial baseline (per-wire ingest_bytes). Arg(k>0): ingest_batch on
// k worker threads. Each iteration ingests the full 4096-trace workload into
// a fresh hive, so dedup and the replay cache start cold every time.
void BM_IngestBatch(benchmark::State& state) {
  static const std::vector<CorpusEntry> corpus = standard_corpus();
  const std::vector<Bytes>& wires = mixed_workload();
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    HiveConfig cfg;
    cfg.ingest_threads = threads;
    Hive hive(&corpus, cfg);
    if (threads == 0) {
      for (const auto& w : wires) hive.ingest_bytes(w);
    } else {
      hive.ingest_batch(wires);
    }
    benchmark::DoNotOptimize(hive.stats().paths_merged);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wires.size()));
}
BENCHMARK(BM_IngestBatch)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_HiveIngest(benchmark::State& state) {
  // Full pipeline: decode + bucket + replay + merge.
  static std::vector<CorpusEntry> corpus = {make_media_parser()};
  Hive hive(&corpus);
  Rng rng(7);
  std::vector<Bytes> wires;
  for (int i = 0; i < 512; ++i) {
    ExecConfig cfg;
    cfg.inputs = {rng.next_in(0, 63), rng.next_in(0, 255)};
    auto result = execute(corpus[0].program, cfg);
    // id 0 bypasses dedup so every iteration exercises the full pipeline.
    result.trace.id = TraceId(0);
    wires.push_back(encode_trace(result.trace));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    hive.ingest_bytes(wires[i++ % wires.size()]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HiveIngest);

}  // namespace
}  // namespace softborg

int main(int argc, char** argv) {
  softborg::BenchJsonWriter json("e10_merge_micro", argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  softborg::JsonTeeReporter reporter(json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return json.write() ? 0 : 1;
}
