# Empty dependencies file for minivm_test.
# This may be replaced when dependencies are built.
