// Differential tests for the batched, parallel ingestion pipeline: for any
// trace workload (mixed programs, shuffled order, duplicates, junk bytes,
// the k-anonymity gate), ingest_batch must produce byte-identical encoded
// trees and equal HiveStats compared to N serial ingest_bytes calls,
// regardless of thread count.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "hive/hive.h"
#include "minivm/corpus.h"
#include "minivm/interp.h"
#include "trace/codec.h"
#include "tree/tree_codec.h"

namespace softborg {
namespace {

// Executes random corpus programs on random in-domain inputs and returns the
// encoded by-products, ids 1..n (unique, so dedup does not interfere).
std::vector<Bytes> make_workload(const std::vector<CorpusEntry>& corpus,
                                 std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> wires;
  wires.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const CorpusEntry& entry = corpus[rng.next_below(corpus.size())];
    ExecConfig cfg;
    for (const auto& d : entry.domains) {
      cfg.inputs.push_back(rng.next_in(d.lo, d.hi));
    }
    cfg.seed = seed * 1'000'000 + i;
    auto result = execute(entry.program, cfg);
    result.trace.id = TraceId(i + 1);
    result.trace.day = i % 7;
    wires.push_back(encode_trace(result.trace));
  }
  return wires;
}

void expect_identical(Hive& serial, Hive& batched,
                      const std::vector<CorpusEntry>& corpus) {
  EXPECT_TRUE(serial.stats() == batched.stats());
  for (const auto& entry : corpus) {
    ExecTree* a = serial.tree(entry.program.id);
    ExecTree* b = batched.tree(entry.program.id);
    ASSERT_EQ(a == nullptr, b == nullptr) << entry.program.name;
    if (a != nullptr) {
      EXPECT_EQ(a->encode(), b->encode()) << entry.program.name;
    }
  }
}

TEST(IngestBatch, MatchesSerialIngestionOnFourThreads) {
  const auto corpus = standard_corpus();
  auto wires = make_workload(corpus, 400, 3);
  wires.push_back(wires[10]);          // network duplicate
  wires.push_back({0xde, 0xad});       // junk bytes
  Rng rng(99);
  std::shuffle(wires.begin(), wires.end(), rng);

  HiveConfig parallel_cfg;
  parallel_cfg.ingest_threads = 4;
  Hive serial(&corpus);
  Hive batched(&corpus, parallel_cfg);
  for (const auto& w : wires) serial.ingest_bytes(w);
  batched.ingest_batch(wires);

  EXPECT_GT(batched.stats().traces_ingested, 0u);
  EXPECT_EQ(batched.stats().duplicates_dropped, 1u);
  EXPECT_EQ(batched.stats().decode_failures, 1u);
  expect_identical(serial, batched, corpus);
}

TEST(IngestBatch, InlineBatchMatchesSerialToo) {
  const auto corpus = standard_corpus();
  const auto wires = make_workload(corpus, 200, 7);
  Hive serial(&corpus);
  Hive batched(&corpus);  // ingest_threads = 0: inline staged pipeline
  for (const auto& w : wires) serial.ingest_bytes(w);
  batched.ingest_batch(wires);
  expect_identical(serial, batched, corpus);
}

TEST(IngestBatch, SplitBatchesEqualOneBatch) {
  const auto corpus = standard_corpus();
  const auto wires = make_workload(corpus, 300, 11);
  HiveConfig cfg;
  cfg.ingest_threads = 2;
  Hive whole(&corpus, cfg);
  Hive split(&corpus, cfg);
  whole.ingest_batch(wires);
  const std::size_t half = wires.size() / 2;
  split.ingest_batch({wires.begin(), wires.begin() + half});
  split.ingest_batch({wires.begin() + half, wires.end()});
  expect_identical(whole, split, corpus);
  EXPECT_EQ(whole.ingest_stats().batches, 1u);
  EXPECT_EQ(split.ingest_stats().batches, 2u);
}

TEST(IngestBatch, MatchesSerialUnderKAnonymityGate) {
  const auto corpus = standard_corpus();
  const auto wires = make_workload(corpus, 250, 13);
  HiveConfig gated_cfg;
  gated_cfg.k_anonymity = 2;
  HiveConfig batched_cfg = gated_cfg;
  batched_cfg.ingest_threads = 4;
  Hive serial(&corpus, gated_cfg);
  Hive batched(&corpus, batched_cfg);
  for (const auto& w : wires) serial.ingest_bytes(w);
  batched.ingest_batch(wires);
  expect_identical(serial, batched, corpus);
}

TEST(IngestBatch, ReplayCacheSkipsInterpreterForIdenticalStreams) {
  const std::vector<CorpusEntry> corpus = {make_media_parser()};
  ExecConfig cfg;
  cfg.inputs = {20, 100};
  const auto live = execute(corpus[0].program, cfg);
  std::vector<Bytes> wires;
  for (std::uint64_t i = 1; i <= 64; ++i) {
    Trace t = live.trace;
    t.id = TraceId(i);  // distinct ids: dedup passes, content identical
    wires.push_back(encode_trace(t));
  }
  Hive hive(&corpus);  // inline: cache counters are exact
  hive.ingest_batch(wires);
  EXPECT_EQ(hive.stats().traces_ingested, 64u);
  EXPECT_EQ(hive.ingest_stats().replay_cache_misses, 1u);
  EXPECT_EQ(hive.ingest_stats().replay_cache_hits, 63u);
  EXPECT_DOUBLE_EQ(hive.ingest_stats().cache_hit_rate(), 63.0 / 64.0);
  ExecTree* tree = hive.tree(corpus[0].program.id);
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->num_paths(), 1u);
  EXPECT_EQ(tree->total_executions(), 64u);
}

TEST(IngestBatch, CachedReplayEqualsFreshReplay) {
  // A hive whose every replay is fresh (capacity forces eviction) must agree
  // with one that serves hits — guards against stale/corrupt cache entries.
  const auto corpus = standard_corpus();
  const auto wires = make_workload(corpus, 200, 17);
  HiveConfig no_cache_cfg;
  no_cache_cfg.replay_cache_capacity = 1;  // evicts on every insert
  Hive cached(&corpus);
  Hive uncached(&corpus, no_cache_cfg);
  cached.ingest_batch(wires);
  cached.ingest_batch(wires);  // all duplicates; exercises hit paths
  uncached.ingest_batch(wires);
  uncached.ingest_batch(wires);
  expect_identical(cached, uncached, corpus);
}

TEST(IngestBatch, EmptyBatchIsANoOp) {
  const auto corpus = standard_corpus();
  HiveConfig cfg;
  cfg.ingest_threads = 4;
  Hive hive(&corpus, cfg);
  hive.ingest_batch({});
  EXPECT_EQ(hive.stats().traces_ingested, 0u);
  EXPECT_EQ(hive.ingest_stats().batches, 1u);
  EXPECT_EQ(hive.ingest_stats().batch_traces, 0u);
}

TEST(IngestBatch, ReplaySignatureSeparatesContentFromMetadata) {
  const auto entry = make_media_parser();
  ExecConfig cfg;
  cfg.inputs = {13, 250};
  const auto live = execute(entry.program, cfg);
  Trace a = live.trace;
  Trace b = live.trace;
  b.id = TraceId(777);  // metadata only: same replay
  b.pod = PodId(42);
  b.day = 5;
  const std::uint64_t seed = 0x1234;
  EXPECT_EQ(replay_signature(a, seed), replay_signature(b, seed));

  Trace c = live.trace;
  c.branch_bits.push_back(true);  // replay-relevant content changed
  EXPECT_NE(replay_signature(a, seed), replay_signature(c, seed));
  EXPECT_NE(replay_signature(a, seed), replay_signature(a, seed + 1));
}

}  // namespace
}  // namespace softborg
