#include "minivm/corpus.h"

#include "minivm/builder.h"

namespace softborg {

CorpusEntry make_media_parser() {
  ProgramBuilder b("media_parser", 1);
  const Reg format = b.reg(), size = b.reg(), tmp = b.reg(), out = b.reg();
  const Reg zero = b.reg();
  const std::uint32_t in_format = b.input_slot(), in_size = b.input_slot();

  auto L_small = b.label(), L_big = b.label(), L_tiny = b.label(),
       L_chk13 = b.label(), L_fmt13 = b.label(), L_other = b.label(),
       L_crash = b.label(), L_safe13 = b.label(), L_lo = b.label(),
       L_hi = b.label(), L_done = b.label();

  b.input(format, in_format);
  b.input(size, in_size);

  // if (format < 32) { parse "small" family } else { "big" family }
  b.cmp_lt_const(tmp, format, 32);
  b.branch_if(tmp, L_small, L_big);

  b.bind(L_small);
  // if (size < 16) quick path
  b.cmp_lt_const(tmp, size, 16);
  b.branch_if(tmp, L_tiny, L_chk13);

  b.bind(L_tiny);
  b.output(size);
  b.jump(L_done);

  b.bind(L_chk13);
  // if (format == 13) the buggy decoder
  b.cmp_eq_const(tmp, format, 13);
  b.branch_if(tmp, L_fmt13, L_other);

  b.bind(L_fmt13);
  // if (size >= 200): divide by (size - size) — planted div-by-zero.
  b.cmp_lt_const(tmp, size, 200);
  b.branch_if(tmp, L_safe13, L_crash);

  b.bind(L_crash);
  b.sub(zero, size, size);  // always 0
  b.const_(out, 1000);
  b.div(out, out, zero);  // CRASH: div-by-zero
  b.jump(L_done);

  b.bind(L_safe13);
  b.output(size);
  b.jump(L_done);

  b.bind(L_other);
  b.add_const(out, size, 1);
  b.output(out);
  b.jump(L_done);

  b.bind(L_big);
  // if (size < 128) cheap path else rich path
  b.cmp_lt_const(tmp, size, 128);
  b.branch_if(tmp, L_lo, L_hi);
  b.bind(L_lo);
  b.const_(out, 2);
  b.output(out);
  b.jump(L_done);
  b.bind(L_hi);
  b.const_(out, 3);
  b.output(out);
  b.jump(L_done);

  b.bind(L_done);
  b.halt();

  CorpusEntry e;
  e.program = b.build();
  e.description =
      "single-threaded parser; div-by-zero when format==13 && size>=200";
  e.domains = {{0, 63}, {0, 255}};
  e.has_crash_bug = true;
  return e;
}

CorpusEntry make_bank_transfer() {
  ProgramBuilder b("bank_transfer", 2);
  const std::uint32_t lock_a = b.lock(), lock_b = b.lock();
  const std::uint32_t g_balance = b.global();
  const std::uint32_t in_amount = b.input_slot();

  // --- thread 0: debit: lock A, then B ---
  const Reg amt0 = b.reg(), bal0 = b.reg();
  b.input(amt0, in_amount);
  b.lock_acq(lock_a);
  b.yield();  // widen the race window
  b.lock_acq(lock_b);
  b.loadg(bal0, g_balance);
  b.add(bal0, bal0, amt0);
  b.storeg(g_balance, bal0);
  b.lock_rel(lock_b);
  b.lock_rel(lock_a);
  b.halt();

  // --- thread 1: credit: B then A when amount > 100 (the bug), else A,B ---
  b.start_thread();
  const Reg amt1 = b.reg(), bal1 = b.reg(), t1 = b.reg();
  auto L_rev = b.label(), L_fwd = b.label(), L_body = b.label(),
       L_done1 = b.label(), L_rel_rev = b.label(), L_rel_fwd = b.label();
  b.input(amt1, in_amount);
  b.cmp_lt_const(t1, amt1, 101);  // amt <= 100 ?
  b.branch_if(t1, L_fwd, L_rev);

  b.bind(L_rev);  // buggy ordering
  b.lock_acq(lock_b);
  b.yield();
  b.lock_acq(lock_a);
  b.jump(L_body);

  b.bind(L_fwd);  // correct ordering
  b.lock_acq(lock_a);
  b.lock_acq(lock_b);
  b.jump(L_body);

  b.bind(L_body);
  b.loadg(bal1, g_balance);
  b.sub(bal1, bal1, amt1);
  b.storeg(g_balance, bal1);
  // Release in the matching order.
  b.cmp_lt_const(t1, amt1, 101);
  b.branch_if(t1, L_rel_fwd, L_rel_rev);
  b.bind(L_rel_rev);
  b.lock_rel(lock_a);
  b.lock_rel(lock_b);
  b.jump(L_done1);
  b.bind(L_rel_fwd);
  b.lock_rel(lock_b);
  b.lock_rel(lock_a);
  b.jump(L_done1);
  b.bind(L_done1);
  b.halt();

  CorpusEntry e;
  e.program = b.build();
  e.description =
      "two-thread transfer; AB-BA deadlock when amount>100 under an "
      "unlucky interleaving";
  e.domains = {{0, 200}};
  e.has_deadlock_bug = true;
  return e;
}

CorpusEntry make_file_copier() {
  ProgramBuilder b("file_copier", 3);
  const Reg chunk = b.reg(), rounds = b.reg(), got = b.reg(), total = b.reg(),
            i = b.reg(), tmp = b.reg(), avg = b.reg();
  const std::uint32_t in_chunk = b.input_slot(), in_rounds = b.input_slot();

  auto L_loop = b.label(), L_read_ok = b.label(), L_err = b.label(),
       L_next = b.label(), L_done = b.label();

  b.input(chunk, in_chunk);
  b.input(rounds, in_rounds);
  b.const_(total, 0);
  b.const_(i, 0);

  b.bind(L_loop);
  b.cmp_lt(tmp, i, rounds);
  b.branch_if(tmp, L_read_ok, L_done);

  b.bind(L_read_ok);
  b.syscall(got, /*sys_id=*/0, chunk);  // read(chunk)
  b.cmp_lt_const(tmp, got, 0);
  b.branch_if(tmp, L_err, L_next);

  b.bind(L_err);
  b.const_(tmp, -1);
  b.output(tmp);
  b.jump(L_done);

  b.bind(L_next);
  b.add(total, total, got);
  // BUG: average = total / got — crashes when the read returned 0 bytes.
  b.div(avg, total, got);
  b.output(avg);
  b.add_const(i, i, 1);
  b.jump(L_loop);

  b.bind(L_done);
  b.output(total);
  b.halt();

  CorpusEntry e;
  e.program = b.build();
  e.description =
      "read-process loop; div-by-zero on a zero-length (short) read";
  e.domains = {{1, 64}, {1, 8}};
  e.has_crash_bug = true;
  return e;
}

CorpusEntry make_magic_lookup() {
  ProgramBuilder b("magic_lookup", 4);
  const Reg key = b.reg(), tmp = b.reg();
  const std::uint32_t in_key = b.input_slot();
  auto L_hit = b.label(), L_miss = b.label();

  b.input(key, in_key);
  b.cmp_eq_const(tmp, key, 4242);
  b.branch_if(tmp, L_hit, L_miss);
  b.bind(L_hit);
  b.abort_now(77);  // the needle
  b.bind(L_miss);
  b.output(key);
  b.halt();

  CorpusEntry e;
  e.program = b.build();
  e.description = "aborts iff key == 4242 (1 in 10000 inputs)";
  e.domains = {{0, 9999}};
  e.has_crash_bug = true;
  return e;
}

CorpusEntry make_config_space(unsigned k) {
  ProgramBuilder b("config_space_" + std::to_string(k), 500 + k);
  const Reg opt = b.reg(), acc = b.reg(), bit = b.reg();
  b.const_(acc, 0);
  for (unsigned j = 0; j < k; ++j) {
    const std::uint32_t slot = b.input_slot();
    auto L_on = b.label(), L_off = b.label();
    b.input(opt, slot);
    b.branch_if(opt, L_on, L_off);
    b.bind(L_on);
    b.const_(bit, static_cast<Value>(1) << j);
    b.add(acc, acc, bit);
    b.jump(L_off);  // fallthrough target doubles as the off label
    b.bind(L_off);
  }
  b.output(acc);
  b.halt();

  CorpusEntry e;
  e.program = b.build();
  e.description = "k independent options; 2^k feasible paths, bug-free";
  e.domains.assign(k, {0, 1});
  return e;
}

CorpusEntry make_worker_pool() {
  ProgramBuilder b("worker_pool", 6);
  const Reg raw = b.reg(), v = b.reg(), hundred = b.reg(), tmp = b.reg(),
            out = b.reg();
  const std::uint32_t in_raw = b.input_slot();

  auto L_neg = b.label(), L_ok = b.label(), L_lo = b.label(), L_hi = b.label(),
       L_done = b.label();

  // main: clamp argument into [0,99] before handing it to the unit.
  b.input(raw, in_raw);
  b.const_(hundred, 100);
  b.mod(v, raw, hundred);  // raw in [0,255] => v in [0,99]

  // ---- unit entry: validate-and-process(v) ----
  const std::uint32_t unit_entry = b.current_pc();
  b.cmp_lt_const(tmp, v, 0);
  b.branch_if(tmp, L_neg, L_ok);
  b.bind(L_neg);
  b.abort_now(99);  // defensive: unreachable in-system, reachable in-unit
  b.bind(L_ok);
  b.cmp_lt_const(tmp, v, 50);
  b.branch_if(tmp, L_lo, L_hi);
  b.bind(L_lo);
  b.add_const(out, v, 10);
  b.output(out);
  b.jump(L_done);
  b.bind(L_hi);
  b.sub(out, v, hundred);
  b.output(out);
  b.jump(L_done);
  b.bind(L_done);
  b.halt();

  CorpusEntry e;
  e.program = b.build();
  e.description =
      "unit with a caller-guarded precondition; the defensive abort is "
      "infeasible in-system but feasible under unit-level consistency";
  e.domains = {{0, 255}};
  e.unit_entry_pc = unit_entry;
  e.unit_params = {v};
  return e;
}

CorpusEntry make_race_counter(unsigned increments_per_thread) {
  ProgramBuilder b("race_counter", 7);
  const std::uint32_t g_counter = b.global(), g_done = b.global();

  // thread 0: increment, then spin until thread 1 is done, then assert.
  const Reg r0 = b.reg(), expect = b.reg(), flag = b.reg(), ok = b.reg();
  for (unsigned i = 0; i < increments_per_thread; ++i) {
    b.loadg(r0, g_counter);
    b.add_const(r0, r0, 1);
    b.yield();  // widen the lost-update window
    b.storeg(g_counter, r0);
  }
  auto L_spin = b.here();
  auto L_check = b.label();
  b.loadg(flag, g_done);
  b.branch_if(flag, L_check, L_spin);
  b.bind(L_check);
  b.loadg(r0, g_counter);
  b.const_(expect, static_cast<Value>(2 * increments_per_thread));
  b.cmp_eq(ok, r0, expect);
  b.assert_true(ok, 42);  // fails on lost updates
  b.halt();

  // thread 1: increment, then signal done.
  b.start_thread();
  const Reg r1 = b.reg(), one = b.reg();
  for (unsigned i = 0; i < increments_per_thread; ++i) {
    b.loadg(r1, g_counter);
    b.add_const(r1, r1, 1);
    b.yield();
    b.storeg(g_counter, r1);
  }
  b.const_(one, 1);
  b.storeg(g_done, one);
  b.halt();

  CorpusEntry e;
  e.program = b.build();
  e.description =
      "unsynchronized shared counter; assert fails on lost updates "
      "(atomicity violation — repair-lab case)";
  e.domains = {};
  e.has_schedule_bug = true;
  return e;
}

CorpusEntry make_skewed_workload(unsigned k, unsigned heavy_iterations) {
  ProgramBuilder b("skewed_workload_" + std::to_string(k), 800 + k);
  const Reg opt = b.reg(), acc = b.reg(), bit = b.reg(), iters = b.reg(),
            i = b.reg(), one = b.reg(), cond = b.reg();
  b.const_(acc, 0);

  // Option 0 picks the loop weight: heavy subtree vs light subtree.
  const std::uint32_t slot0 = b.input_slot();
  auto L_heavy = b.label(), L_light = b.label(), L_opts = b.label();
  b.input(opt, slot0);
  b.branch_if(opt, L_heavy, L_light);
  b.bind(L_heavy);
  b.const_(iters, static_cast<Value>(heavy_iterations));
  b.jump(L_opts);
  b.bind(L_light);
  b.const_(iters, 1);
  b.jump(L_opts);
  b.bind(L_opts);

  // Remaining k-1 options shape the path as in config_space.
  for (unsigned j = 1; j < k; ++j) {
    const std::uint32_t slot = b.input_slot();
    auto L_on = b.label(), L_off = b.label();
    b.input(opt, slot);
    b.branch_if(opt, L_on, L_off);
    b.bind(L_on);
    b.const_(bit, static_cast<Value>(1) << j);
    b.add(acc, acc, bit);
    b.jump(L_off);
    b.bind(L_off);
  }

  // Processing loop: `iters` is concrete by now, so the loop branch is
  // deterministic (no extra trace bits) — it only adds execution cost.
  b.const_(i, 0);
  b.const_(one, 1);
  auto L_top = b.here();
  auto L_body = b.label(), L_done = b.label();
  b.cmp_lt(cond, i, iters);
  b.branch_if(cond, L_body, L_done);
  b.bind(L_body);
  b.add(acc, acc, one);
  b.add(i, i, one);
  b.jump(L_top);
  b.bind(L_done);
  b.output(acc);
  b.halt();

  CorpusEntry e;
  e.program = b.build();
  e.description =
      "2^k paths with a ~" + std::to_string(heavy_iterations) +
      "x cost skew between the two top-level subtrees (coop workloads)";
  e.domains.assign(k, {0, 1});
  return e;
}

CorpusEntry make_dining_philosophers(unsigned n) {
  SB_CHECK(n >= 2 && n <= 16);
  ProgramBuilder b("dining_philosophers_" + std::to_string(n), 810 + n);
  std::vector<std::uint32_t> forks;
  for (unsigned i = 0; i < n; ++i) forks.push_back(b.lock());
  const std::uint32_t g_meals = b.global();

  for (unsigned i = 0; i < n; ++i) {
    if (i > 0) b.start_thread();
    const Reg meals = b.reg();
    b.lock_acq(forks[i]);                // left fork
    b.yield();                           // think a little (widen the window)
    b.lock_acq(forks[(i + 1) % n]);      // right fork
    b.loadg(meals, g_meals);
    b.add_const(meals, meals, 1);
    b.storeg(g_meals, meals);
    b.lock_rel(forks[(i + 1) % n]);
    b.lock_rel(forks[i]);
    b.halt();
  }

  CorpusEntry e;
  e.program = b.build();
  e.description = "classic " + std::to_string(n) +
                  "-philosopher left-then-right fork order; length-" +
                  std::to_string(n) + " lock cycle";
  e.domains = {};
  e.has_deadlock_bug = true;
  return e;
}

CorpusEntry make_retry_storm() {
  ProgramBuilder b("retry_storm", 9);
  const Reg strict = b.reg(), chunk = b.reg(), r = b.reg(),
            attempts = b.reg(), tmp = b.reg();
  const std::uint32_t in_strict = b.input_slot(), in_chunk = b.input_slot();

  auto L_retry = b.label(), L_ok = b.label(), L_failed = b.label(),
       L_strict_check = b.label(), L_spin = b.label();

  b.input(strict, in_strict);
  b.input(chunk, in_chunk);
  b.const_(attempts, 0);

  b.bind(L_retry);
  b.syscall(r, /*sys_id=*/3, chunk);  // send(): fails ~10% of the time
  b.cmp_lt_const(tmp, r, 0);
  b.branch_if(tmp, L_failed, L_ok);

  b.bind(L_failed);
  b.add_const(attempts, attempts, 1);
  b.cmp_lt_const(tmp, attempts, 3);
  b.branch_if(tmp, L_retry, L_strict_check);

  // BUG: in strict mode, after 3 failed attempts the back-off logic wedges
  // into a busy loop instead of giving up.
  b.bind(L_strict_check);
  b.branch_if(strict, L_spin, L_retry);
  b.bind(L_spin);
  b.jump(L_spin);

  b.bind(L_ok);
  b.output(r);
  b.halt();

  CorpusEntry e;
  e.program = b.build();
  e.description =
      "retries a failing send(); in strict mode wedges into a busy loop "
      "after 3 failures (input+environment dependent hang)";
  e.domains = {{0, 1}, {1, 32}};
  e.has_crash_bug = false;
  return e;
}

std::vector<CorpusEntry> standard_corpus() {
  std::vector<CorpusEntry> corpus;
  corpus.push_back(make_media_parser());
  corpus.push_back(make_bank_transfer());
  corpus.push_back(make_file_copier());
  corpus.push_back(make_magic_lookup());
  corpus.push_back(make_config_space(10));
  corpus.push_back(make_worker_pool());
  corpus.push_back(make_race_counter());
  return corpus;
}

}  // namespace softborg
