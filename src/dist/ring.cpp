#include "dist/ring.h"

#include <algorithm>

#include "common/check.h"

namespace softborg::dist {

namespace {

// SplitMix64 finalizer: the same avalanche ShardedHive::shard_index uses,
// so placement quality is a known quantity.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

HashRing::HashRing(std::size_t num_shards, std::size_t vnodes_per_shard)
    : vnodes_(vnodes_per_shard) {
  SB_CHECK(num_shards >= 1 && vnodes_per_shard >= 1);
  points_.reserve(num_shards * vnodes_per_shard);
  for (std::size_t s = 0; s < num_shards; ++s) {
    num_shards_ = s + 1;
    insert_points(s);
  }
}

void HashRing::insert_points(std::size_t shard) {
  for (std::size_t v = 0; v < vnodes_; ++v) {
    // Distinct stream per (shard, vnode); the 0x9e37… odd constant keeps
    // shard streams disjoint for any vnode count.
    const std::uint64_t pos =
        mix(shard * 0x9e3779b97f4a7c15ULL + v + 1);
    points_.emplace_back(pos, static_cast<std::uint32_t>(shard));
  }
  std::sort(points_.begin(), points_.end());
}

std::size_t HashRing::owner(std::uint64_t key) const {
  const std::uint64_t h = mix(key);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const auto& point, std::uint64_t value) { return point.first < value; });
  if (it == points_.end()) it = points_.begin();  // wrap past the top
  return it->second;
}

void HashRing::add_shard() {
  insert_points(num_shards_);
  num_shards_++;
}

}  // namespace softborg::dist
