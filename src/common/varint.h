// LEB128 variable-length integer codec for trace wire encoding (§3.1).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace softborg {

using Bytes = std::vector<std::uint8_t>;

void put_varint(Bytes& out, std::uint64_t v);

// ZigZag-encoded signed varint.
void put_varint_signed(Bytes& out, std::int64_t v);

// Multi-byte continuation of get_varint (see below).
std::optional<std::uint64_t> get_varint_slow(const Bytes& in,
                                             std::size_t& pos);

// Cursor-based decoder; returns nullopt on truncated/overlong input.
// Inlined single-byte fast path: most wire fields are small scalars, and
// trace decoding/summarizing is bottlenecked on this call.
inline std::optional<std::uint64_t> get_varint(const Bytes& in,
                                               std::size_t& pos) {
  if (pos < in.size() && in[pos] < 0x80) return in[pos++];
  return get_varint_slow(in, pos);
}

inline std::optional<std::int64_t> get_varint_signed(const Bytes& in,
                                                     std::size_t& pos) {
  auto zz = get_varint(in, pos);
  if (!zz) return std::nullopt;
  return static_cast<std::int64_t>((*zz >> 1) ^ (0 - (*zz & 1)));
}

}  // namespace softborg
