#include "obs/registry.h"

#include <algorithm>
#include <cstdio>

namespace softborg::obs {

namespace detail {
std::atomic<bool> g_enabled{true};
}

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

thread_local std::size_t Counter::tls_stripe_ = Counter::kNoStripe;

std::size_t Counter::assign_stripe() {
  static std::atomic<std::size_t> next{0};
  tls_stripe_ = next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return tls_stripe_;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<HistogramMetric>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back({name, h->snapshot()});
  }
  return snap;
}

MetricsSnapshot MetricsRegistry::delta_snapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    const std::uint64_t now = c->value();
    std::uint64_t& base = counter_baseline_[name];
    snap.counters.push_back({name, now - base});
    base = now;
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back({name, h->snapshot()});
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  counter_baseline_.clear();
}

std::size_t MetricsRegistry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::string MetricsSnapshot::counters_text() const {
  std::string out;
  out.reserve(counters.size() * 48);
  char buf[64];
  for (const CounterValue& c : counters) {
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(c.value));
    out += c.name;
    out += buf;
  }
  return out;
}

std::optional<std::uint64_t> MetricsSnapshot::counter_value(
    std::string_view name) const {
  const auto it = std::lower_bound(
      counters.begin(), counters.end(), name,
      [](const CounterValue& c, std::string_view n) { return c.name < n; });
  if (it == counters.end() || it->name != name) return std::nullopt;
  return it->value;
}

}  // namespace softborg::obs
