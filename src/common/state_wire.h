// Bounds-checked codec for durable component state (src/store snapshots).
//
// Every mutable component (Rng consumers, SimNet, Pod, Hive, SolverCache)
// serializes itself with these helpers so the snapshot loader has one
// hardened decoding discipline: a StateReader never reads past the buffer,
// never allocates more than the buffer could possibly describe, and latches
// the first failure — after any malformed field, every subsequent read
// returns zero values and ok() stays false. Callers check ok() once at the
// end instead of after every field, and a torn or bit-flipped snapshot
// degrades to a clean load failure, never UB (ISSUE 7 validation policy).
//
// Doubles are serialized as their IEEE-754 bit patterns: snapshot restore
// must reproduce runs bit-for-bit, so "close enough" text round-trips are
// not acceptable.
#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "common/varint.h"

namespace softborg {

inline void put_f64(Bytes& out, double v) {
  put_varint(out, std::bit_cast<std::uint64_t>(v));
}

inline void put_bool(Bytes& out, bool v) { put_varint(out, v ? 1 : 0); }

inline void put_blob(Bytes& out, const Bytes& b) {
  put_varint(out, b.size());
  out.insert(out.end(), b.begin(), b.end());
}

inline void put_str(Bytes& out, const std::string& s) {
  put_varint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

class StateReader {
 public:
  explicit StateReader(const Bytes& buf, std::size_t pos = 0)
      : buf_(&buf), pos_(pos) {}

  bool ok() const { return ok_; }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const {
    return pos_ <= buf_->size() ? buf_->size() - pos_ : 0;
  }
  // True when decoding succeeded AND consumed the whole buffer — the
  // strict-validation contract for top-level payloads (trailing garbage is
  // corruption, not slack).
  bool done() const { return ok_ && pos_ == buf_->size(); }
  void fail() { ok_ = false; }

  std::uint64_t u64() {
    if (!ok_) return 0;
    auto v = get_varint(*buf_, pos_);
    if (!v) {
      ok_ = false;
      return 0;
    }
    return *v;
  }

  std::int64_t i64() {
    if (!ok_) return 0;
    auto v = get_varint_signed(*buf_, pos_);
    if (!v) {
      ok_ = false;
      return 0;
    }
    return *v;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  bool boolean() {
    const std::uint64_t v = u64();
    if (v > 1) ok_ = false;
    return ok_ && v == 1;
  }

  // u64 capped at `max` (inclusive); enum tags and small counts.
  std::uint64_t u64_max(std::uint64_t max) {
    const std::uint64_t v = u64();
    if (v > max) ok_ = false;
    return ok_ ? v : 0;
  }

  std::uint32_t u32() {
    return static_cast<std::uint32_t>(u64_max(0xffffffffULL));
  }

  // Element count for a sequence whose elements occupy at least
  // `min_element_bytes` each. Bounding by the remaining buffer kills the
  // bit-flipped-length attack (a huge count would otherwise drive a huge
  // reserve() before the first element read fails).
  std::uint64_t count(std::uint64_t min_element_bytes = 1) {
    const std::uint64_t n = u64();
    if (!ok_) return 0;
    if (min_element_bytes == 0) min_element_bytes = 1;
    if (n > remaining() / min_element_bytes) {
      ok_ = false;
      return 0;
    }
    return n;
  }

  bool blob(Bytes& out) {
    const std::uint64_t n = count();
    if (!ok_) return false;
    out.assign(buf_->begin() + static_cast<std::ptrdiff_t>(pos_),
               buf_->begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
  }

  bool str(std::string& out) {
    const std::uint64_t n = count();
    if (!ok_) return false;
    out.assign(reinterpret_cast<const char*>(buf_->data()) + pos_, n);
    pos_ += n;
    return true;
  }

 private:
  const Bytes* buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace softborg
