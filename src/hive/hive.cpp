#include "hive/hive.h"

#include <algorithm>
#include <bit>
#include <optional>
#include <thread>

#include "common/check.h"
#include "common/log.h"
#include "common/metrics.h"
#include "hive/coop.h"
#include "minivm/replay.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "trace/codec.h"

namespace softborg {

namespace {
// Hive telemetry mirroring HiveStats / IngestStats / ProofClosureStats into
// the process-wide registry, so a sharded fleet reports one aggregate view.
// The pipeline never touches these counters per event: publish_metrics()
// pushes the stats-struct deltas at serial boundaries (end of a trace or
// batch ingest, the certificate barrier, process()). The stats structs are
// deterministic across worker counts — the differential suites pin this —
// so the counters are too (see DESIGN.md, "Observability").
struct HiveMetrics {
  obs::Counter& traces_ingested = obs::MetricsRegistry::global().counter(
      "hive.traces_ingested_total");
  obs::Counter& duplicates_dropped = obs::MetricsRegistry::global().counter(
      "hive.duplicates_dropped_total");
  obs::Counter& decode_failures = obs::MetricsRegistry::global().counter(
      "hive.decode_failures_total");
  obs::Counter& gated_traces = obs::MetricsRegistry::global().counter(
      "hive.gated_traces_total");
  obs::Counter& replay_failures = obs::MetricsRegistry::global().counter(
      "hive.replay_failures_total");
  obs::Counter& patched_skipped = obs::MetricsRegistry::global().counter(
      "hive.patched_traces_skipped_total");
  obs::Counter& replay_cache_hits = obs::MetricsRegistry::global().counter(
      "hive.replay.cache_hits_total");
  obs::Counter& replay_cache_misses = obs::MetricsRegistry::global().counter(
      "hive.replay.cache_misses_total");
  obs::Counter& paths_merged = obs::MetricsRegistry::global().counter(
      "hive.tree.paths_merged_total");
  obs::Counter& new_paths = obs::MetricsRegistry::global().counter(
      "hive.tree.new_paths_total");
  obs::Counter& bugs_found =
      obs::MetricsRegistry::global().counter("hive.bugs_found_total");
  obs::Counter& bugs_reopened =
      obs::MetricsRegistry::global().counter("hive.bugs_reopened_total");
  obs::Counter& fix_recurrences = obs::MetricsRegistry::global().counter(
      "hive.fix_recurrences_total");
  obs::Counter& fixes_approved = obs::MetricsRegistry::global().counter(
      "hive.fixes_approved_total");
  obs::Counter& repair_lab_entries = obs::MetricsRegistry::global().counter(
      "hive.repair_lab_entries_total");
  obs::Counter& proofs_revoked = obs::MetricsRegistry::global().counter(
      "hive.proofs_revoked_total");
  obs::Counter& proof_attempts =
      obs::MetricsRegistry::global().counter("proof.attempts_total");
  obs::Counter& proof_publishable =
      obs::MetricsRegistry::global().counter("proof.publishable_total");
  obs::Counter& proof_refuted =
      obs::MetricsRegistry::global().counter("proof.refuted_total");
  obs::Counter& solver_calls =
      obs::MetricsRegistry::global().counter("solver.calls_total");
  obs::Counter& solver_exact_hits =
      obs::MetricsRegistry::global().counter("solver.exact_hits_total");
  obs::Counter& solver_unsat_subsumed = obs::MetricsRegistry::global().counter(
      "solver.unsat_subsumed_total");
  obs::Counter& solver_models_reused = obs::MetricsRegistry::global().counter(
      "solver.models_reused_total");

  static HiveMetrics& get() {
    static HiveMetrics m;
    return m;
  }
};

// Stage timings piggyback on the IngestStats timers instead of SB_SPAN: the
// stages share locals across one function body, so scoped blocks don't fit.
inline void record_stage_span(obs::SpanSite& site, double seconds) {
  if (obs::spans_enabled()) site.hist().record(seconds * 1e6);
}
}  // namespace

Hive::Hive(const std::vector<CorpusEntry>* corpus, HiveConfig config)
    : corpus_(corpus),
      config_(config),
      fixer_(config.fixer),
      planner_(config.guidance),
      prover_(config.next_proof_id),
      rng_(config.seed) {
  SB_CHECK(corpus_ != nullptr);
  entry_index_.reserve(corpus_->size());
  for (const auto& e : *corpus_) entry_index_.insert(e.program.id.value, &e);
  if (config_.k_anonymity > 1) {
    gate_ = std::make_unique<KAnonymityGate>(config_.k_anonymity);
  }
}

const CorpusEntry* Hive::entry_of(ProgramId program) const {
  return entry_index_.find(program.value);
}

ExecTree* Hive::tree(ProgramId program) {
  auto it = trees_.find(program.value);
  return it == trees_.end() ? nullptr : &it->second;
}

const ExecTree* Hive::tree(ProgramId program) const {
  auto it = trees_.find(program.value);
  return it == trees_.end() ? nullptr : &it->second;
}

const SiteStats& Hive::site_stats(ProgramId program) {
  return sites_[program.value];
}

void Hive::ingest_bytes(const Bytes& wire) {
  auto trace = decode_trace(wire);
  if (!trace) {
    stats_.decode_failures++;
    publish_metrics();
    return;
  }
  ingest(std::move(*trace));
}

void Hive::ingest(Trace t) {
  ingest_impl(std::move(t));
  publish_metrics();
}

void Hive::ingest_impl(Trace t) {
  if (t.id.value != 0 && !seen_trace_ids_.insert(t.id.value)) {
    stats_.duplicates_dropped++;  // network duplicate
    return;
  }
  stats_.traces_ingested++;

  if (gate_ != nullptr) {
    auto released = gate_->add(std::move(t));
    if (released.empty()) {
      stats_.gated_traces++;
      return;
    }
    for (auto& r : released) ingest_released(std::move(r));
    return;
  }
  ingest_released(std::move(t));
}

void Hive::ingest_released(Trace t) {
  const CorpusEntry* entry = prepare_released(t);
  if (entry == nullptr) return;
  // The single-trace path replays directly; memoization lives in the batch
  // pipeline (ingest_batch), where repeated decision streams are common
  // enough to pay for the signature hashing.
  const auto rep = replay_trace(entry->program, t);
  if (!rep.ok) {
    stats_.replay_failures++;
    return;
  }
  std::vector<SymDecision> decisions;
  decisions.reserve(rep.decisions.size());
  for (const auto& d : rep.decisions) decisions.push_back({d.site, d.taken});
  merge_decisions(t, decisions);
}

void Hive::note_bug_sighting(Bug* bug, const CorpusEntry& entry,
                             std::uint64_t day) {
  if (bug == nullptr) return;
  // Fix-effectiveness monitoring: a failure matching an already-fixed
  // bug's signature — observed after the fix has had time to propagate —
  // means the distributed fix is not holding in the field. After a
  // couple of recurrences the bug is reopened so a new fix attempt (or
  // the repair lab) takes over.
  if (bug->fixed && day > bug->fixed_day + config_.recurrence_grace_days) {
    stats_.fix_recurrences++;
    if (++recurrences_[bug->id.value] >= 3) {
      bug->fixed = false;
      fix_attempted_bugs_.erase(bug->id.value);
      recurrences_.erase(bug->id.value);
      stats_.bugs_reopened++;
      SB_LOG_WARN("hive: reopening bug %llu — fix not holding",
                  static_cast<unsigned long long>(bug->id.value));
    }
  }
  if (bug->occurrences == 1) {
    stats_.bugs_found++;
    // Assertion failures in multi-threaded programs are (conservatively)
    // schedule-dependent: the same input passes under other schedules.
    if (bug->kind == BugKind::kCrash && bug->crash.has_value() &&
        bug->crash->kind == CrashKind::kAssertFailure &&
        entry.program.num_threads() > 1) {
      bugs_.mark_schedule_dependent(bug->id);
    }
    SB_LOG_INFO("hive: new bug: %s", bug->describe().c_str());
  }
}

const CorpusEntry* Hive::prepare_released(const Trace& t) {
  const CorpusEntry* entry = entry_of(t.program);
  if (entry == nullptr) return nullptr;  // unknown program

  if (t.patched) stats_.fixed_traces_seen++;  // fix telemetry
  latest_day_seen_ = std::max(latest_day_seen_, t.day);

  // Bug tracking first: every failure counts, even unreplayable ones.
  if (t.outcome != Outcome::kOk) {
    Bug* bug = bugs_.record(t);
    note_bug_sighting(bug, *entry, t.day);
    if (t.outcome == Outcome::kDeadlock) {
      locks_[t.program.value].add_trace(t);
    }
  }

  // Tree merge: natural executions only (fixed-up runs are not paths of P),
  // and only granularities whose bit-vectors replay deterministically.
  if (t.patched) {
    stats_.patched_traces_skipped++;
    return nullptr;
  }
  if (t.granularity != Granularity::kTaintedBranches &&
      t.granularity != Granularity::kFull) {
    return nullptr;
  }
  return entry;
}

const Hive::ReplayCache::Slot* Hive::ReplayCache::find(
    const ReplayKey& key) const {
  if (slots.empty() || key.key == 0) return nullptr;
  const std::size_t mask = slots.size() - 1;
  std::size_t i = key.key & mask;
  while (slots[i].key != 0) {
    if (slots[i].key == key.key) {
      return slots[i].check == key.check ? &slots[i] : nullptr;
    }
    i = (i + 1) & mask;
  }
  return nullptr;
}

void Hive::ReplayCache::insert(
    const ReplayKey& key,
    std::shared_ptr<const std::vector<SymDecision>> decisions,
    std::size_t capacity) {
  if (key.key == 0) return;
  if (count >= capacity) {  // generational eviction
    std::fill(slots.begin(), slots.end(), Slot{});
    count = 0;
  }
  if ((count + 1) * 2 > slots.size()) {
    std::vector<Slot> old = std::move(slots);
    slots.assign(std::max<std::size_t>(1024, old.size() * 2), Slot{});
    for (Slot& s : old) {
      if (s.key == 0) continue;
      std::size_t i = s.key & (slots.size() - 1);
      while (slots[i].key != 0) i = (i + 1) & (slots.size() - 1);
      slots[i] = std::move(s);
    }
  }
  const std::size_t mask = slots.size() - 1;
  std::size_t i = key.key & mask;
  while (slots[i].key != 0 && slots[i].key != key.key) i = (i + 1) & mask;
  if (slots[i].key == 0) count++;
  slots[i] = {key.key, key.check, std::move(decisions)};
}

std::shared_ptr<const std::vector<SymDecision>> Hive::replay_decisions(
    const CorpusEntry& entry, const ReplayKey& key, const Trace* decoded,
    const Bytes* wire, bool synchronized) {
  {
    std::unique_lock<std::mutex> lock(replay_mu_, std::defer_lock);
    if (synchronized) lock.lock();
    if (const ReplayCache::Slot* slot = replay_cache_.find(key)) {
      ingest_stats_.replay_cache_hits++;
      return slot->decisions;
    }
  }
  // Miss: materialize the trace if stage 1 only summarized it. The summary
  // came from a successful validation pass, so decode cannot fail here. The
  // scratch is per-thread (stage 2 may fan out) and recycles its payload
  // buffers across the batch's misses.
  if (decoded == nullptr) {
    static thread_local Trace scratch;
    const bool ok = decode_trace_into(scratch, *wire);
    SB_CHECK(ok);
    decoded = &scratch;
  }
  const auto rep = replay_trace(entry.program, *decoded);
  std::shared_ptr<const std::vector<SymDecision>> result;
  if (rep.ok) {
    auto decisions = std::make_shared<std::vector<SymDecision>>();
    decisions->reserve(rep.decisions.size());
    for (const auto& d : rep.decisions) decisions->push_back({d.site, d.taken});
    result = std::move(decisions);
  }
  std::unique_lock<std::mutex> lock(replay_mu_, std::defer_lock);
  if (synchronized) lock.lock();
  ingest_stats_.replay_cache_misses++;
  replay_cache_.insert(key, result, config_.replay_cache_capacity);
  return result;
}

void Hive::merge_decisions(const Trace& t,
                           const std::vector<SymDecision>& decisions) {
  auto [it, inserted] = trees_.try_emplace(t.program.value, t.program);
  const auto merge = it->second.add_path(decisions, t.outcome, t.crash);
  stats_.paths_merged++;
  if (merge.new_path) stats_.new_paths++;
}

ThreadPool* Hive::ingest_pool() {
  std::size_t workers = config_.ingest_threads;
  const std::size_t cores = std::thread::hardware_concurrency();
  if (cores != 0) workers = std::min(workers, cores);
  if (workers <= 1) return nullptr;
  if (ingest_pool_ == nullptr) {
    ingest_pool_ = std::make_unique<ThreadPool>(workers);
  }
  return ingest_pool_.get();
}

void Hive::ingest_batch(const std::vector<Bytes>& wires) {
  SB_SPAN("hive.ingest.batch");
  ingest_stats_.batches++;
  ingest_stats_.batch_traces += wires.size();
  ThreadPool* pool = ingest_pool();
  Timer timer;

  // Stage 1 (parallel): summarize. One allocation-free validation pass per
  // wire yields the scalar header plus the replay key; the expensive vector
  // payloads are only decoded later, by the consumers that need them
  // (cache-missing replay, new-bug exemplars, the gate). Inline batches
  // skip the summary buffer and summarize lazily inside the interlude
  // (reported under serial_seconds rather than decode_seconds).
  const bool staged = pool != nullptr;
  std::vector<std::optional<TraceWireSummary>> summaries;
  if (staged) {
    summaries.resize(wires.size());
    parallel_for(pool, wires.size(), [&](std::size_t i) {
      summaries[i] = summarize_trace_wire(wires[i]);
    });
  }
  {
    const double sec = timer.elapsed_seconds();
    ingest_stats_.decode_seconds += sec;
    static obs::SpanSite decode_site("hive.ingest.decode");
    record_stage_span(decode_site, sec);
  }
  timer.reset();

  // Serial interlude, in submission order: dedup, the k-anonymity gate, and
  // bug tracking all mutate shared state and must match ingest() exactly.
  // Traces sharing a replay key coalesce into one weighted job here: the key
  // covers every replay-relevant field, so such traces have identical
  // decision streams, outcomes, and crashes, and repeated add_path calls
  // only bump counters — one weighted merge leaves the tree byte-identical.
  struct Job {
    std::size_t wire = 0;  // index into `wires`; unused when trace is set
    const CorpusEntry* entry = nullptr;
    ReplayKey key;
    Outcome outcome = Outcome::kOk;
    std::uint64_t weight = 1;  // traces coalesced into this job
    std::optional<CrashInfo> crash;
    std::unique_ptr<Trace> trace;  // decoded eagerly: failures, gate releases
    std::shared_ptr<const std::vector<SymDecision>> decisions;
  };
  std::vector<Job> jobs;  // one per distinct replay key, first-seen order
  jobs.reserve(std::max<std::size_t>(64, wires.size() / 4));
  seen_trace_ids_.reserve(seen_trace_ids_.size() + wires.size());
  // key.key -> job index, open-addressed: replay keys come out of a splitmix
  // finalizer, so their low bits index uniformly and linear probing at <= 50%
  // load beats a node-based map. Slot key 0 means empty; a genuine zero key
  // (one in 2^64) just skips coalescing, which only costs a duplicate job.
  // Sized for the typical distinct-key fraction and doubled on demand:
  // zeroing a worst-case table every batch costs more than the rare rehash.
  std::size_t key_mask =
      std::bit_ceil(std::max<std::size_t>(64, wires.size() / 4)) - 1;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> by_key(key_mask + 1,
                                                              {0, 0});
  const auto grow_by_key = [&] {
    std::vector<std::pair<std::uint64_t, std::uint32_t>> old = std::move(by_key);
    key_mask = key_mask * 2 + 1;
    by_key.assign(key_mask + 1, {0, 0});
    for (const auto& e : old) {
      if (e.first == 0) continue;
      std::size_t slot = e.first & key_mask;
      while (by_key[slot].first != 0) slot = (slot + 1) & key_mask;
      by_key[slot] = e;
    }
  };
  // True when `key` folded into an existing job (an interpreter run skipped
  // by memoization, counted as a cache hit); false when a new job is needed.
  const auto coalesce = [&](const ReplayKey& key) {
    if (key.key == 0) return false;
    // jobs.size() bounds the table's entry count (collision-split jobs are
    // pushed but never stored), so this keeps the load factor under 1/2.
    if ((jobs.size() + 1) * 2 > key_mask + 1) grow_by_key();
    std::size_t slot = key.key & key_mask;
    while (true) {
      auto& entry = by_key[slot];
      if (entry.first == 0) {
        entry = {key.key, static_cast<std::uint32_t>(jobs.size())};
        return false;
      }
      if (entry.first == key.key) {
        Job& job = jobs[entry.second];
        if (job.key.check != key.check) {
          return false;  // 64-bit collision: keep the jobs distinct
        }
        job.weight++;
        ingest_stats_.replay_cache_hits++;
        return true;
      }
      slot = (slot + 1) & key_mask;
    }
  };
  // Gate releases and failure traces go through the same prepare_released
  // as serial ingestion; they carry their decoded trace into stage 2.
  const auto stage_decoded = [&](Trace&& t) {
    if (const CorpusEntry* entry = prepare_released(t)) {
      const ReplayKey key = replay_key(t);
      if (coalesce(key)) return;
      Job job;
      job.entry = entry;
      job.key = key;
      job.outcome = t.outcome;
      job.crash = t.crash;
      job.trace = std::make_unique<Trace>(std::move(t));
      jobs.push_back(std::move(job));
    }
  };
  std::optional<TraceWireSummary> inline_summary;
  for (std::size_t i = 0; i < wires.size(); ++i) {
    const std::optional<TraceWireSummary>& summary =
        staged ? summaries[i] : (inline_summary = summarize_trace_wire(wires[i]));
    if (!summary) {
      stats_.decode_failures++;
      continue;
    }
    const TraceWireSummary& s = *summary;
    if (s.id.value != 0 && !seen_trace_ids_.insert(s.id.value)) {
      stats_.duplicates_dropped++;
      continue;
    }
    stats_.traces_ingested++;
    if (gate_ != nullptr) {
      // The gate buffers whole traces (possibly across batches), so this
      // path decodes eagerly, exactly like serial ingestion.
      auto t = decode_trace(wires[i]);
      SB_CHECK(t.has_value());  // summarize validated the same bytes
      auto released = gate_->add(std::move(*t));
      if (released.empty()) {
        stats_.gated_traces++;
        continue;
      }
      for (auto& r : released) stage_decoded(std::move(r));
      continue;
    }
    if (s.outcome == Outcome::kDeadlock) {
      // Deadlock signatures and lock-order analysis consume the trace's
      // lock events; decode the payload now, exactly like serial ingestion.
      auto t = decode_trace(wires[i]);
      SB_CHECK(t.has_value());
      stage_decoded(std::move(*t));
      continue;
    }
    // Fast path: OK traces and non-deadlock failures need no payload until
    // replay. This mirrors prepare_released field-for-field; the only
    // deferred decode is a new bug's exemplar, on first occurrence.
    const CorpusEntry* entry = entry_of(s.program);
    if (entry == nullptr) continue;  // unknown program
    if (s.patched) stats_.fixed_traces_seen++;
    latest_day_seen_ = std::max(latest_day_seen_, s.day);
    if (s.outcome != Outcome::kOk) {
      Bug* bug =
          bugs_.record(BugSighting{s.program, s.outcome, s.crash, s.day});
      if (bug != nullptr && bug->occurrences == 1) {
        auto t = decode_trace(wires[i]);
        SB_CHECK(t.has_value());
        bug->exemplar = std::move(*t);  // record() left it for us to fill
      }
      note_bug_sighting(bug, *entry, s.day);
    }
    if (s.patched) {
      stats_.patched_traces_skipped++;
      continue;
    }
    if (s.granularity != Granularity::kTaintedBranches &&
        s.granularity != Granularity::kFull) {
      continue;
    }
    if (coalesce(s.key)) continue;
    Job job;
    job.wire = i;
    job.entry = entry;
    job.key = s.key;
    job.outcome = s.outcome;
    job.crash = s.crash;
    jobs.push_back(std::move(job));
  }
  summaries.clear();
  {
    const double sec = timer.elapsed_seconds();
    ingest_stats_.serial_seconds += sec;
    static obs::SpanSite serial_site("hive.ingest.serial");
    record_stage_span(serial_site, sec);
  }

  // Stage 2 (parallel): resolve decision streams, memoized. Per-trace work;
  // the cache is the only shared state and is mutex-guarded when fanning out.
  timer.reset();
  const bool synchronized = pool != nullptr;
  parallel_for(pool, jobs.size(), [&](std::size_t i) {
    Job& job = jobs[i];
    job.decisions = replay_decisions(*job.entry, job.key, job.trace.get(),
                                     &wires[job.wire], synchronized);
  });
  {
    const double sec = timer.elapsed_seconds();
    ingest_stats_.replay_seconds += sec;
    static obs::SpanSite replay_site("hive.ingest.replay");
    record_stage_span(replay_site, sec);
  }

  // Stage 3: group by program — each tree gets exactly one writer, so the
  // merge needs no locks, and within a program the submission order is
  // preserved, so the trees are byte-identical to serial ingestion.
  timer.reset();
  std::vector<std::uint64_t> programs;  // first-seen order
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].decisions == nullptr) {
      stats_.replay_failures += jobs[i].weight;
      continue;
    }
    const std::uint64_t program = jobs[i].entry->program.id.value;
    auto [it, inserted] = groups.try_emplace(program);
    if (inserted) programs.push_back(program);
    it->second.push_back(i);
  }
  // Trees are created serially so the merge tasks never mutate the map.
  for (const std::uint64_t program : programs) {
    trees_.try_emplace(program, ProgramId(program));
  }
  struct MergeCounts {
    std::uint64_t merged = 0;
    std::uint64_t fresh = 0;
  };
  std::vector<MergeCounts> counts(programs.size());
  parallel_for(pool, programs.size(), [&](std::size_t k) {
    ExecTree& tree = trees_.find(programs[k])->second;
    // Jobs are already coalesced per replay key; within a program they sit
    // in first-occurrence order, so weighted merges build a tree
    // byte-identical to merging every trace serially in submission order.
    for (const std::size_t i : groups.find(programs[k])->second) {
      const Job& job = jobs[i];
      const auto merge =
          tree.add_path(*job.decisions, job.outcome, job.crash, job.weight);
      counts[k].merged += job.weight;
      if (merge.new_path) counts[k].fresh++;
    }
  });
  for (const auto& c : counts) {
    stats_.paths_merged += c.merged;
    stats_.new_paths += c.fresh;
  }
  {
    const double sec = timer.elapsed_seconds();
    ingest_stats_.merge_seconds += sec;
    static obs::SpanSite merge_site("hive.ingest.merge");
    record_stage_span(merge_site, sec);
  }
  publish_metrics();
}

void Hive::ingest_sampled(const SampledTrace& t) {
  sites_[t.program.value].add(t);
}

std::vector<FixCandidate> Hive::process() {
  std::vector<FixCandidate> approved;
  for (Bug* bug : bugs_.open_bugs()) {
    if (!fix_attempted_bugs_.insert(bug->id.value).second) continue;
    const CorpusEntry* entry = entry_of(bug->program);
    if (entry == nullptr) continue;

    auto candidates = fixer_.synthesize(*bug, *entry);
    if (candidates.empty()) continue;

    FixCandidate best = std::move(candidates.front());
    const bool auto_eligible = bug->kind == BugKind::kCrash ||
                               bug->kind == BugKind::kDeadlock;
    if (auto_eligible && best.score() >= config_.auto_fix_threshold) {
      const FixId id = std::visit([](const auto& f) { return f.id; },
                                  best.fix);
      bugs_.mark_fixed(bug->id, id);
      bug->fixed_day = latest_day_seen_;
      stats_.fixes_approved++;
      // Shipping instrumentation changes the deployed program: proofs
      // about the unpatched P no longer describe the fleet (§3.3).
      revoke_proofs(bug->program);
      SB_LOG_INFO("hive: approved fix %llu for bug %llu (score %.2f)",
                  static_cast<unsigned long long>(id.value),
                  static_cast<unsigned long long>(bug->id.value),
                  best.score());
      approved.push_back(std::move(best));
    } else {
      RepairLabEntry lab;
      lab.why_not_auto =
          !auto_eligible
              ? "schedule-dependent or hang: needs a real (human) fix"
              : "validation score below auto threshold";
      lab.candidate = std::move(best);
      repair_lab_.push_back(std::move(lab));
      stats_.repair_lab_entries++;
    }
  }
  publish_metrics();
  return approved;
}

std::vector<GuidanceDirective> Hive::plan_guidance(std::size_t per_program) {
  std::vector<GuidanceDirective> out;
  for (const auto& entry : *corpus_) {
    auto ds = plan_guidance_for(entry, per_program);
    out.insert(out.end(), std::make_move_iterator(ds.begin()),
               std::make_move_iterator(ds.end()));
  }
  return out;
}

std::vector<GuidanceDirective> Hive::plan_guidance_for(
    const CorpusEntry& entry, std::size_t per_program) {
  SB_SPAN("hive.guidance.plan");
  if (entry.program.num_threads() == 1) {
    ExecTree* t = tree(entry.program.id);
    if (t == nullptr) return {};
    // Guidance shares the hive-wide cache: frontier witnesses recycle models
    // and UNSAT proofs left behind by earlier proof attempts, and vice versa.
    return planner_.plan_frontier(entry, *t, per_program,
                                  config_.solver_cache ? &solver_cache_
                                                       : nullptr);
  }
  return planner_.plan_schedules(entry, per_program, rng_);
}

ProofCertificate Hive::attempt_proof(ProgramId program, Property property) {
  SB_SPAN("hive.proof.attempt");
  const CorpusEntry* entry = entry_of(program);
  SB_CHECK(entry != nullptr);
  auto [it, inserted] = trees_.try_emplace(program.value, program);
  ProofCertificate cert =
      prover_.attempt(*entry, it->second, property, config_.proof_budget,
                      config_.solver_cache ? &solver_cache_ : nullptr);
  record_certificate(cert);
  if (obs::Recorder::enabled()) {
    // Closes the causal chain: inherits the worker thread's trace context
    // (set while processing the batch that triggered this proof attempt).
    obs::Recorder::record(obs::EventKind::kProofClose, {},
                          cert.publishable() ? 1u : 0u, cert.solver_calls);
  }
  return cert;
}

void Hive::record_certificate(const ProofCertificate& cert) {
  if (cert.publishable()) proofs_.push_back({cert, false});
  proof_stats_.attempts++;
  if (cert.publishable()) proof_stats_.publishable++;
  if (!cert.holds) proof_stats_.refuted++;
  proof_stats_.solver_calls += cert.solver_calls;
  proof_stats_.solver_cache_hits += cert.solver_cache_hits;
  proof_stats_.solver_unsat_subsumed += cert.solver_unsat_subsumed;
  proof_stats_.solver_models_reused += cert.solver_models_reused;
  // Solver-tier telemetry publishes here, at the serial corpus-order
  // barrier every proof path funnels through, never from worker threads:
  // the certificates are deterministic, so so are these counters.
  publish_metrics();
}

void Hive::publish_metrics() {
  if (!obs::enabled()) {
    // Kill switch: drop the outstanding deltas instead of deferring them.
    obs_published_stats_ = stats_;
    obs_published_ingest_ = ingest_stats_;
    obs_published_proof_ = proof_stats_;
    obs_published_coop_ = coop_stats_;
    return;
  }
  auto& m = HiveMetrics::get();
  const auto bump = [](obs::Counter& c, std::uint64_t now,
                       std::uint64_t& base) {
    if (now != base) {
      c.add(now - base);
      base = now;
    }
  };
  bump(m.traces_ingested, stats_.traces_ingested,
       obs_published_stats_.traces_ingested);
  bump(m.duplicates_dropped, stats_.duplicates_dropped,
       obs_published_stats_.duplicates_dropped);
  bump(m.decode_failures, stats_.decode_failures,
       obs_published_stats_.decode_failures);
  bump(m.gated_traces, stats_.gated_traces,
       obs_published_stats_.gated_traces);
  bump(m.replay_failures, stats_.replay_failures,
       obs_published_stats_.replay_failures);
  bump(m.patched_skipped, stats_.patched_traces_skipped,
       obs_published_stats_.patched_traces_skipped);
  bump(m.paths_merged, stats_.paths_merged,
       obs_published_stats_.paths_merged);
  bump(m.new_paths, stats_.new_paths, obs_published_stats_.new_paths);
  bump(m.bugs_found, stats_.bugs_found, obs_published_stats_.bugs_found);
  bump(m.bugs_reopened, stats_.bugs_reopened,
       obs_published_stats_.bugs_reopened);
  bump(m.fix_recurrences, stats_.fix_recurrences,
       obs_published_stats_.fix_recurrences);
  bump(m.fixes_approved, stats_.fixes_approved,
       obs_published_stats_.fixes_approved);
  bump(m.repair_lab_entries, stats_.repair_lab_entries,
       obs_published_stats_.repair_lab_entries);
  bump(m.proofs_revoked, stats_.proofs_revoked,
       obs_published_stats_.proofs_revoked);
  bump(m.replay_cache_hits, ingest_stats_.replay_cache_hits,
       obs_published_ingest_.replay_cache_hits);
  bump(m.replay_cache_misses, ingest_stats_.replay_cache_misses,
       obs_published_ingest_.replay_cache_misses);
  bump(m.proof_attempts, proof_stats_.attempts,
       obs_published_proof_.attempts);
  bump(m.proof_publishable, proof_stats_.publishable,
       obs_published_proof_.publishable);
  bump(m.proof_refuted, proof_stats_.refuted, obs_published_proof_.refuted);
  bump(m.solver_calls, proof_stats_.solver_calls,
       obs_published_proof_.solver_calls);
  bump(m.solver_exact_hits, proof_stats_.solver_cache_hits,
       obs_published_proof_.solver_cache_hits);
  bump(m.solver_unsat_subsumed, proof_stats_.solver_unsat_subsumed,
       obs_published_proof_.solver_unsat_subsumed);
  bump(m.solver_models_reused, proof_stats_.solver_models_reused,
       obs_published_proof_.solver_models_reused);
  // Coop counters are named per strategy and registered lazily — coop runs
  // are rare (at most a handful per day), so the registry lookup at this
  // serial barrier is irrelevant next to the run itself.
  for (std::size_t s = 0; s < coop_stats_.size(); ++s) {
    const CoopStrategyStats& cur = coop_stats_[s];
    CoopStrategyStats& base = obs_published_coop_[s];
    if (cur == base) continue;
    auto& reg = obs::MetricsRegistry::global();
    const std::string prefix =
        std::string("coop.") +
        strategy_name(static_cast<PartitionStrategy>(s)) + ".";
    bump(reg.counter(prefix + "runs_total"), cur.runs, base.runs);
    bump(reg.counter(prefix + "completed_total"), cur.completed,
         base.completed);
    bump(reg.counter(prefix + "ticks_total"), cur.ticks, base.ticks);
    bump(reg.counter(prefix + "useful_steps_total"), cur.useful_steps,
         base.useful_steps);
    bump(reg.counter(prefix + "wasted_steps_total"), cur.wasted_steps,
         base.wasted_steps);
    bump(reg.counter(prefix + "idle_ticks_total"), cur.idle_ticks,
         base.idle_ticks);
    bump(reg.counter(prefix + "worker_deaths_total"), cur.worker_deaths,
         base.worker_deaths);
  }
}

ThreadPool* Hive::proof_pool() {
  if (config_.proof_threads <= 1) return nullptr;
  if (proof_pool_ == nullptr) {
    proof_pool_ = std::make_unique<ThreadPool>(config_.proof_threads);
  }
  return proof_pool_.get();
}

std::vector<ProofCertificate> Hive::attempt_proofs_all(Property property) {
  std::vector<const CorpusEntry*> entries;
  entries.reserve(corpus_->size());
  for (const auto& e : *corpus_) entries.push_back(&e);
  return attempt_proofs_for(entries, property);
}

std::vector<ProofCertificate> Hive::attempt_proofs_for(
    const std::vector<const CorpusEntry*>& entries, Property property) {
  SB_SPAN("hive.proof.sweep");
  // Trees are created serially so the attempts never mutate the map; the
  // map is node-based, so the references stay stable across later inserts.
  std::vector<ExecTree*> trees(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    SB_CHECK(entries[i] != nullptr);
    trees[i] = &trees_.try_emplace(entries[i]->program.id.value,
                                   entries[i]->program.id)
                    .first->second;
  }

  // Pre-assigned ids: attempt i issues exactly the ProofId a serial loop
  // would have, whatever order the workers finish in.
  const std::uint64_t id_base = prover_.next_id();
  prover_.advance_ids(entries.size());

  // Each attempt runs against its own snapshot of the shared cache (the
  // cache is not thread-safe, and attempts must not observe each other's
  // in-flight inserts, or results would depend on scheduling). Snapshots
  // are used even on the inline path so serial == parallel by construction.
  const bool use_cache = config_.solver_cache;
  std::vector<SolverCache> caches;
  if (use_cache) caches.assign(entries.size(), solver_cache_);

  std::vector<ProofCertificate> certs(entries.size());
  parallel_for(proof_pool(), entries.size(), [&](std::size_t i) {
    ProofEngine local(id_base + i);
    certs[i] = local.attempt(*entries[i], *trees[i], property,
                             config_.proof_budget,
                             use_cache ? &caches[i] : nullptr);
  });

  // Barrier: merge the snapshots back and publish, both in corpus order —
  // the merged cache and the proof log are deterministic.
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (use_cache) solver_cache_.merge_from(caches[i]);
    record_certificate(certs[i]);
  }
  return certs;
}

void Hive::revoke_proofs(ProgramId program) {
  for (auto& published : proofs_) {
    if (!published.revoked && published.certificate.program == program) {
      published.revoked = true;
      stats_.proofs_revoked++;
      SB_LOG_INFO("hive: revoked proof %llu (%s) — a fix changed the "
                  "deployed program",
                  static_cast<unsigned long long>(
                      published.certificate.id.value),
                  property_name(published.certificate.property));
    }
  }
}

std::size_t Hive::valid_proof_count() const {
  std::size_t n = 0;
  for (const auto& published : proofs_) {
    if (!published.revoked) n++;
  }
  return n;
}

bool Hive::has_valid_proof(ProgramId program) const {
  for (const auto& published : proofs_) {
    if (!published.revoked && published.certificate.program == program) {
      return true;
    }
  }
  return false;
}

void Hive::record_coop_outcome(const CoopResult& result) {
  const std::size_t s = static_cast<std::size_t>(result.strategy);
  SB_CHECK(s < coop_stats_.size());
  CoopStrategyStats& cs = coop_stats_[s];
  cs.runs++;
  if (result.complete) cs.completed++;
  cs.ticks += result.ticks;
  cs.useful_steps += result.useful_steps;
  cs.wasted_steps += result.wasted_steps;
  cs.idle_ticks += result.idle_ticks;
  cs.worker_deaths += result.worker_deaths;
  publish_metrics();
}

namespace {

// unordered containers serialize through sorted key lists so equal hives
// always produce equal snapshot bytes, whatever their insertion history.
template <typename Map>
std::vector<std::uint64_t> sorted_map_keys(const Map& m) {
  std::vector<std::uint64_t> keys;
  keys.reserve(m.size());
  for (const auto& [key, value] : m) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

void Hive::save_state(Bytes& out) const {
  put_varint(out, stats_.traces_ingested);
  put_varint(out, stats_.duplicates_dropped);
  put_varint(out, stats_.decode_failures);
  put_varint(out, stats_.replay_failures);
  put_varint(out, stats_.patched_traces_skipped);
  put_varint(out, stats_.gated_traces);
  put_varint(out, stats_.paths_merged);
  put_varint(out, stats_.new_paths);
  put_varint(out, stats_.bugs_found);
  put_varint(out, stats_.fixes_approved);
  put_varint(out, stats_.repair_lab_entries);
  put_varint(out, stats_.proofs_revoked);
  put_varint(out, stats_.fixed_traces_seen);
  put_varint(out, stats_.fix_recurrences);
  put_varint(out, stats_.bugs_reopened);
  put_varint(out, ingest_stats_.batches);
  put_varint(out, ingest_stats_.batch_traces);
  put_varint(out, ingest_stats_.replay_cache_hits);
  put_varint(out, ingest_stats_.replay_cache_misses);
  put_f64(out, ingest_stats_.decode_seconds);
  put_f64(out, ingest_stats_.serial_seconds);
  put_f64(out, ingest_stats_.replay_seconds);
  put_f64(out, ingest_stats_.merge_seconds);
  put_varint(out, proof_stats_.attempts);
  put_varint(out, proof_stats_.publishable);
  put_varint(out, proof_stats_.refuted);
  put_varint(out, proof_stats_.solver_calls);
  put_varint(out, proof_stats_.solver_cache_hits);
  put_varint(out, proof_stats_.solver_unsat_subsumed);
  put_varint(out, proof_stats_.solver_models_reused);

  const auto lock_keys = sorted_map_keys(locks_);
  put_varint(out, lock_keys.size());
  for (const std::uint64_t key : lock_keys) {
    put_varint(out, key);
    locks_.at(key).save_state(out);
  }
  const auto site_keys = sorted_map_keys(sites_);
  put_varint(out, site_keys.size());
  for (const std::uint64_t key : site_keys) {
    put_varint(out, key);
    sites_.at(key).save_state(out);
  }

  std::vector<std::uint64_t> seen;
  seen.reserve(seen_trace_ids_.size());
  seen_trace_ids_.for_each([&](std::uint64_t id) { seen.push_back(id); });
  std::sort(seen.begin(), seen.end());
  put_varint(out, seen.size());
  for (const std::uint64_t id : seen) put_varint(out, id);

  put_bool(out, gate_ != nullptr);
  if (gate_ != nullptr) gate_->save_state(out);

  bugs_.save_state(out);
  put_varint(out, fixer_.next_fix_id());
  put_varint(out, prover_.next_id());
  std::uint64_t rng_state[4];
  rng_.export_state(rng_state);
  for (const std::uint64_t word : rng_state) put_varint(out, word);
  put_varint(out, latest_day_seen_);

  std::vector<std::uint64_t> attempted(fix_attempted_bugs_.begin(),
                                       fix_attempted_bugs_.end());
  std::sort(attempted.begin(), attempted.end());
  put_varint(out, attempted.size());
  for (const std::uint64_t id : attempted) put_varint(out, id);

  const auto recurrence_keys = sorted_map_keys(recurrences_);
  put_varint(out, recurrence_keys.size());
  for (const std::uint64_t key : recurrence_keys) {
    put_varint(out, key);
    put_varint(out, recurrences_.at(key));
  }

  put_varint(out, repair_lab_.size());
  for (const RepairLabEntry& entry : repair_lab_) {
    encode_fix_candidate(out, entry.candidate);
    put_str(out, entry.why_not_auto);
  }
  put_varint(out, proofs_.size());
  for (const PublishedProof& published : proofs_) {
    encode_certificate(out, published.certificate);
    put_bool(out, published.revoked);
  }

  for (const CoopStrategyStats& cs : coop_stats_) {
    put_varint(out, cs.runs);
    put_varint(out, cs.completed);
    put_varint(out, cs.ticks);
    put_varint(out, cs.useful_steps);
    put_varint(out, cs.wasted_steps);
    put_varint(out, cs.idle_ticks);
    put_varint(out, cs.worker_deaths);
  }
}

bool Hive::load_state(StateReader& r) {
  stats_.traces_ingested = r.u64();
  stats_.duplicates_dropped = r.u64();
  stats_.decode_failures = r.u64();
  stats_.replay_failures = r.u64();
  stats_.patched_traces_skipped = r.u64();
  stats_.gated_traces = r.u64();
  stats_.paths_merged = r.u64();
  stats_.new_paths = r.u64();
  stats_.bugs_found = r.u64();
  stats_.fixes_approved = r.u64();
  stats_.repair_lab_entries = r.u64();
  stats_.proofs_revoked = r.u64();
  stats_.fixed_traces_seen = r.u64();
  stats_.fix_recurrences = r.u64();
  stats_.bugs_reopened = r.u64();
  ingest_stats_.batches = r.u64();
  ingest_stats_.batch_traces = r.u64();
  ingest_stats_.replay_cache_hits = r.u64();
  ingest_stats_.replay_cache_misses = r.u64();
  ingest_stats_.decode_seconds = r.f64();
  ingest_stats_.serial_seconds = r.f64();
  ingest_stats_.replay_seconds = r.f64();
  ingest_stats_.merge_seconds = r.f64();
  proof_stats_.attempts = r.u64();
  proof_stats_.publishable = r.u64();
  proof_stats_.refuted = r.u64();
  proof_stats_.solver_calls = r.u64();
  proof_stats_.solver_cache_hits = r.u64();
  proof_stats_.solver_unsat_subsumed = r.u64();
  proof_stats_.solver_models_reused = r.u64();

  locks_.clear();
  const std::uint64_t n_locks = r.count(2);
  std::uint64_t prev_key = 0;
  for (std::uint64_t i = 0; i < n_locks && r.ok(); ++i) {
    const std::uint64_t key = r.u64();
    if ((i > 0 && key <= prev_key) || entry_of(ProgramId(key)) == nullptr) {
      r.fail();
      return false;
    }
    prev_key = key;
    if (!locks_[key].load_state(r)) return false;
  }
  sites_.clear();
  const std::uint64_t n_sites = r.count(2);
  prev_key = 0;
  for (std::uint64_t i = 0; i < n_sites && r.ok(); ++i) {
    const std::uint64_t key = r.u64();
    if ((i > 0 && key <= prev_key) || entry_of(ProgramId(key)) == nullptr) {
      r.fail();
      return false;
    }
    prev_key = key;
    if (!sites_[key].load_state(r)) return false;
  }

  seen_trace_ids_ = FlatU64Set{};
  const std::uint64_t n_seen = r.count();
  seen_trace_ids_.reserve(n_seen);
  std::uint64_t prev_id = 0;
  for (std::uint64_t i = 0; i < n_seen && r.ok(); ++i) {
    const std::uint64_t id = r.u64();
    if (i > 0 && id <= prev_id) r.fail();  // sorted, unique
    prev_id = id;
    seen_trace_ids_.insert(id);
  }

  const bool has_gate = r.boolean();
  if (r.ok() && has_gate != (gate_ != nullptr)) {
    r.fail();  // k-anonymity config mismatch
    return false;
  }
  if (has_gate && !gate_->load_state(r)) return false;

  if (!bugs_.load_state(r)) return false;
  fixer_.set_next_fix_id(r.u64());
  prover_.set_next_id(r.u64());
  std::uint64_t rng_state[4];
  for (std::uint64_t& word : rng_state) word = r.u64();
  rng_.import_state(rng_state);
  latest_day_seen_ = r.u64();

  fix_attempted_bugs_.clear();
  const std::uint64_t n_attempted = r.count();
  prev_id = 0;
  for (std::uint64_t i = 0; i < n_attempted && r.ok(); ++i) {
    const std::uint64_t id = r.u64();
    if (i > 0 && id <= prev_id) r.fail();
    prev_id = id;
    fix_attempted_bugs_.insert(id);
  }
  recurrences_.clear();
  const std::uint64_t n_recurrences = r.count(2);
  prev_key = 0;
  for (std::uint64_t i = 0; i < n_recurrences && r.ok(); ++i) {
    const std::uint64_t key = r.u64();
    if (i > 0 && key <= prev_key) r.fail();
    prev_key = key;
    recurrences_[key] = r.u64();
  }

  repair_lab_.clear();
  const std::uint64_t n_lab = r.count(4);
  repair_lab_.reserve(n_lab);
  for (std::uint64_t i = 0; i < n_lab && r.ok(); ++i) {
    RepairLabEntry entry;
    if (!decode_fix_candidate(r, entry.candidate)) return false;
    r.str(entry.why_not_auto);
    repair_lab_.push_back(std::move(entry));
  }
  proofs_.clear();
  const std::uint64_t n_proofs = r.count(8);
  proofs_.reserve(n_proofs);
  for (std::uint64_t i = 0; i < n_proofs && r.ok(); ++i) {
    PublishedProof published;
    if (!decode_certificate(r, published.certificate)) return false;
    if (entry_of(published.certificate.program) == nullptr) {
      r.fail();
      return false;
    }
    published.revoked = r.boolean();
    proofs_.push_back(std::move(published));
  }

  for (CoopStrategyStats& cs : coop_stats_) {
    cs.runs = r.u64();
    cs.completed = r.u64();
    cs.ticks = r.u64();
    cs.useful_steps = r.u64();
    cs.wasted_steps = r.u64();
    cs.idle_ticks = r.u64();
    cs.worker_deaths = r.u64();
  }
  if (!r.ok()) return false;

  // The run that saved this state already published its counter totals into
  // the process-global registry; baseline so they are not re-published.
  obs_published_stats_ = stats_;
  obs_published_ingest_ = ingest_stats_;
  obs_published_proof_ = proof_stats_;
  obs_published_coop_ = coop_stats_;
  return true;
}

void Hive::save_trees(Bytes& out) const {
  // Corpus order, not map order: deterministic bytes.
  std::uint64_t n = 0;
  for (const auto& entry : *corpus_) {
    if (trees_.count(entry.program.id.value) != 0) n++;
  }
  put_varint(out, n);
  for (const auto& entry : *corpus_) {
    auto it = trees_.find(entry.program.id.value);
    if (it == trees_.end()) continue;
    put_varint(out, entry.program.id.value);
    put_blob(out, it->second.encode());
  }
}

bool Hive::load_trees(StateReader& r) {
  trees_.clear();
  const std::uint64_t n = r.count(2);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    const std::uint64_t program = r.u64();
    Bytes wire;
    r.blob(wire);
    if (!r.ok()) return false;
    if (entry_of(ProgramId(program)) == nullptr) {
      r.fail();  // tree for a program outside this corpus
      return false;
    }
    // The hardened v2 tree decoder validates structure; a torn or
    // bit-flipped tree comes back nullopt, never a malformed tree.
    auto tree = ExecTree::decode(wire);
    if (!tree || tree->program().value != program) {
      r.fail();
      return false;
    }
    if (!trees_.emplace(program, std::move(*tree)).second) {
      r.fail();  // duplicate program
      return false;
    }
  }
  return r.ok();
}

std::vector<Bytes> Hive::regression_inputs() const {
  std::vector<Bytes> wires;
  for (const Bug& bug : bugs_.all()) {
    // Scalar-only sightings leave the exemplar default (outcome kOk);
    // nothing to replay for those.
    if (bug.exemplar.outcome == Outcome::kOk) continue;
    Trace t = bug.exemplar;
    // Sanitize identity: trace id 0 skips the dedup set (so a warm-started
    // hive re-ingests it), and pod/day/guided are the saving run's context,
    // meaningless — and misleading — in the importing run.
    t.id = TraceId(0);
    t.pod = PodId(0);
    t.day = 0;
    t.guided = false;
    wires.push_back(encode_trace(t));
  }
  return wires;
}

}  // namespace softborg
