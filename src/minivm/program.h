// MiniVM program model (paper §2, Fig. 2: "every program encodes an
// execution tree").
//
// MiniVM is the stand-in for real end-user software: a small register
// machine with program-external inputs, system calls, shared globals,
// threads, and locks. It is deliberately small but keeps the properties
// SoftBorg relies on: input-dependent branching (so executions are encoded
// as branch bit-vectors), thread interleavings (so deadlocks exist), and a
// path-constraint semantics that the symbolic executor can mirror exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/ids.h"

namespace softborg {

using Value = std::int64_t;
using Reg = std::uint16_t;

enum class Op : std::uint8_t {
  kConst,    // regs[a] = imm
  kMov,      // regs[a] = regs[b]
  kAdd,      // regs[a] = regs[b] + regs[c]
  kSub,      // regs[a] = regs[b] - regs[c]
  kMul,      // regs[a] = regs[b] * regs[c]
  kDiv,      // regs[a] = regs[b] / regs[c]   (crash: div by zero)
  kMod,      // regs[a] = regs[b] % regs[c]   (crash: mod by zero)
  kCmpLt,    // regs[a] = regs[b] < regs[c]
  kCmpLe,    // regs[a] = regs[b] <= regs[c]
  kCmpEq,    // regs[a] = regs[b] == regs[c]
  kCmpNe,    // regs[a] = regs[b] != regs[c]
  kBranchIf, // if regs[a] != 0 goto b else goto c; has a static branch site id
  kJump,     // goto a
  kInput,    // regs[a] = inputs[b]; taints regs[a]
  kSyscall,  // regs[a] = env(sys_id=b, arg=regs[c]); taints regs[a]
  kLoadG,    // regs[a] = globals[b]
  kStoreG,   // globals[a] = regs[b]
  kLock,     // acquire lock a
  kUnlock,   // release lock a
  kAssert,   // if regs[a] == 0 crash(AssertFailure, detail=b)
  kAbort,    // crash(ExplicitAbort, detail=a)
  kOutput,   // append regs[a] to outputs
  kYield,    // scheduler hint: end this thread's quantum
  kHalt,     // terminate this thread
};

struct Instr {
  Op op = Op::kHalt;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
  Value imm = 0;
  // Dense static decision-site id (0..num_branch_sites-1). Branches are
  // decision sites, and so are the instructions that can crash on a
  // data-dependent condition (kAssert, kDiv, kMod): surviving such a check
  // is a decision of the execution tree — otherwise two executions with
  // identical branch decisions could differ in outcome and the collective
  // tree could not represent (or prove anything about) the difference.
  std::uint32_t site = 0;
};

struct Program {
  ProgramId id;
  std::string name;
  std::vector<Instr> code;
  std::vector<std::uint32_t> thread_entries;  // pc of each thread's entry
  std::uint16_t num_regs = 0;     // registers per thread
  std::uint16_t num_globals = 0;  // shared mutable globals
  std::uint16_t num_locks = 0;
  std::uint16_t num_inputs = 0;   // program-external input slots
  std::uint32_t num_branch_sites = 0;

  std::size_t num_threads() const { return thread_entries.size(); }

  const Instr& at(std::uint32_t pc) const {
    SB_CHECK(pc < code.size());
    return code[pc];
  }

  // Structural sanity: jump targets in range, register/global/lock/input
  // indices within declared bounds, dense branch site numbering.
  bool validate(std::string* error = nullptr) const;
};

// Number of opcodes; Op values are dense in [0, kNumOps).
inline constexpr std::size_t kNumOps = static_cast<std::size_t>(Op::kHalt) + 1;

// True for binary ALU operations reading regs b and c into reg a.
bool is_binary_alu(Op op);

const char* op_name(Op op);

}  // namespace softborg
