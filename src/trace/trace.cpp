#include "trace/trace.h"

namespace softborg {

namespace {

// Feeds every replay-relevant field of `t` to `sink`, in a fixed order.
// Shared by replay_signature and replay_key so the two can never drift.
// The order follows the wire layout (crash before granularity, steps last)
// so summarize_trace_wire can fold the key during its single validation
// walk instead of re-parsing the payload sections.
template <typename Sink>
void fold_replay_fields(const Trace& t, Sink&& sink) {
  sink(t.program.value);
  sink(static_cast<std::uint64_t>(t.outcome));
  if (t.crash.has_value()) {
    sink(static_cast<std::uint64_t>(t.crash->kind) + 1);
    sink(t.crash->pc);
    sink(static_cast<std::uint64_t>(t.crash->detail));
  } else {
    sink(std::uint64_t{0});
  }
  sink(static_cast<std::uint64_t>(t.granularity));
  sink(t.branch_bits.size());
  for (const std::uint64_t word : t.branch_bits.words()) sink(word);
  sink(t.schedule.size());
  for (const auto& run : t.schedule) {
    sink((static_cast<std::uint64_t>(run.thread) << 32) | run.steps);
  }
  sink(t.steps);
}

}  // namespace

std::uint64_t replay_signature(const Trace& t, std::uint64_t seed) {
  std::uint64_t h = seed;
  fold_replay_fields(t, [&h](std::uint64_t v) { h = replay_mix(h, v); });
  return h;
}

ReplayKey replay_key(const Trace& t) {
  ReplayKey k{kReplayKeySeed, kReplayCheckSeed};
  fold_replay_fields(t, [&k](std::uint64_t v) { replay_fold(k, v); });
  return k;
}

}  // namespace softborg
