# Empty dependencies file for sb_privacy.
# This may be replaced when dependencies are built.
