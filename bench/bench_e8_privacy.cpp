// E8 — Privacy vs information content (paper §3.1, after Castro et al [6]).
//
// Claim under test: traces carry enough control-flow information to fix
// bugs, but also enough to threaten privacy; SoftBorg needs "a principled
// framework for reasoning about the balance between control flow details
// and privacy".
//
// Part A measures the *risk* side on a path-rich program (config_space(12),
// 4096 paths): with per-user habits, most users' paths are unique — a
// perfect quasi-identifier. Bit suppression collapses paths into families
// and drives uniqueness down, measurably (entropy, unique fraction).
//
// Part B measures the *utility* side on media_parser: at each rung of the
// anonymization ladder, can the hive still (a) bucket the crash and
// (b) synthesize a validated fix? The k-anonymity gate runs at hive
// ingress (it needs pod identity to count distinct reporters; identity is
// droppable after release), so those rungs keep ids through the gate.
//
// Expected shape: suppression buys privacy at the cost of replayable
// structure (tree merging and input-hull fix synthesis degrade); k-gating
// keeps full utility for common paths while withholding rare (identifying)
// ones — the paper's trade-off, quantified.
#include <cstdio>

#include "bench_json.h"
#include "core/softborg.h"

using namespace softborg;

int main(int argc, char** argv) {
  BenchJsonWriter json("e8_privacy", argc, argv);
  // ---------------- part A: re-identification risk --------------------------
  const auto rich = make_config_space(12);
  Rng rng(5);
  std::vector<Trace> rich_traces;
  for (std::uint64_t user = 1; user <= 300; ++user) {
    // Per-user habits: a mostly-fixed option vector.
    std::vector<double> p_on(12);
    for (auto& p : p_on) p = rng.next_bool(0.5) ? 0.9 : 0.1;
    for (int run = 0; run < 10; ++run) {
      std::vector<Value> inputs;
      for (int j = 0; j < 12; ++j) {
        inputs.push_back(rng.next_bool(p_on[static_cast<std::size_t>(j)]) ? 1
                                                                          : 0);
      }
      ExecConfig cfg;
      cfg.inputs = inputs;
      auto result = execute(rich.program, cfg);
      result.trace.pod = PodId(user);
      rich_traces.push_back(result.trace);
    }
  }

  std::printf("# E8.A: re-identification risk on %s (4096 paths, 300 users "
              "with habits)\n",
              rich.program.name.c_str());
  std::printf("%-16s %-12s %-10s %-10s %-10s\n", "config", "bits/trace",
              "paths", "entropy", "unique%");
  struct RiskRung {
    const char* name;
    AnonymizeConfig anon;
  };
  for (const auto& rung : std::vector<RiskRung>{
           {"raw", {.strip_pod_id = false, .quantize_day = false}},
           {"suppress 1/8", {.bit_suppression = 8}},
           {"suppress 1/4", {.bit_suppression = 4}},
           {"suppress 1/2", {.bit_suppression = 2}},
       }) {
    std::vector<Trace> released;
    for (const auto& t : rich_traces) released.push_back(anonymize(t, rung.anon));
    const auto m = measure_population(released);
    std::printf("%-16s %-12.1f %-10zu %-10.2f %-10.1f\n", rung.name,
                m.mean_bits_per_trace, m.distinct_paths, m.path_entropy_bits,
                m.unique_fraction * 100.0);
    json.add(std::string("reid_risk/") + rung.name, "unique_pct",
             m.unique_fraction * 100.0);
  }

  // ---------------- part B: utility ladder ----------------------------------
  const auto parser = make_media_parser();
  std::vector<Trace> raw;
  std::uint64_t trace_id = 1;
  for (std::uint64_t user = 1; user <= 300; ++user) {
    const bool risky = user % 10 == 0;  // some users live in the crash region
    for (int run = 0; run < 10; ++run) {
      ExecConfig cfg;
      cfg.inputs = {risky ? 13 : rng.next_in(0, 63),
                    risky ? rng.next_in(180, 255) : rng.next_in(0, 255)};
      cfg.seed = rng();
      auto result = execute(parser.program, cfg);
      result.trace.id = TraceId(trace_id++);
      result.trace.pod = PodId(user);
      raw.push_back(result.trace);
    }
  }

  struct Rung {
    const char* name;
    AnonymizeConfig anon;
    std::size_t k = 1;
  };
  // The k-anonymity rungs keep pod identity through the gate (the gate IS
  // the identity consumer; what analysis sees afterwards is path data).
  std::vector<Rung> ladder = {
      {"raw", {.strip_pod_id = false, .quantize_day = false}, 1},
      {"scrub-ids", {}, 1},
      {"k-anon k=3", {.strip_pod_id = false, .quantize_day = false}, 3},
      {"k-anon k=10", {.strip_pod_id = false, .quantize_day = false}, 10},
      {"suppress 1/4", {.bit_suppression = 4}, 1},
      {"suppress 1/2", {.bit_suppression = 2}, 1},
  };

  std::printf("\n# E8.B: the utility ladder on %s (%zu traces)\n",
              parser.program.name.c_str(), raw.size());
  std::printf("%-14s | %-12s %-9s | %-10s %-10s %-10s\n", "config",
              "gate-delayed", "merged", "bug found", "fix score", "fix kind");

  for (const auto& rung : ladder) {
    std::vector<CorpusEntry> corpus;
    corpus.push_back(make_media_parser());
    HiveConfig hive_config;
    hive_config.k_anonymity = rung.k;
    Hive hive(&corpus, hive_config);

    for (const auto& t : raw) hive.ingest(anonymize(t, rung.anon));

    const bool bug_found = !hive.bug_tracker().all().empty();
    const auto fixes = hive.process();
    const double fix_score = fixes.empty() ? 0.0 : fixes.front().score();
    const char* kind =
        fixes.empty() ? "-"
        : std::holds_alternative<GuardPatch>(fixes.front().fix)
            ? "input-guard"
            : "crash-guard";

    json.add(std::string("utility/") + rung.name, "fix_score", fix_score);
    std::printf("%-14s | %-12llu %-9llu | %-10s %-10.2f %-10s\n", rung.name,
                static_cast<unsigned long long>(hive.stats().gated_traces),
                static_cast<unsigned long long>(hive.stats().paths_merged),
                bug_found ? "yes" : "NO", fix_score, kind);
  }

  std::printf(
      "\n(the k-gate withholds rare paths — including, at k=10, some crash "
      "reports — while common paths keep full analysis value; bit "
      "suppression keeps the crash *bucketed* but destroys the replayable "
      "structure fix synthesis needs: the two ends of the paper's "
      "privacy/utility spectrum)\n");
  return json.write() ? 0 : 1;
}
