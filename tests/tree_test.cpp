#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "minivm/corpus.h"
#include "minivm/interp.h"
#include "minivm/replay.h"
#include "sym/executor.h"
#include "tree/exec_tree.h"

namespace softborg {
namespace {

std::vector<SymDecision> decisions_of(const Program& p, const Trace& t) {
  const auto rep = replay_trace(p, t);
  EXPECT_TRUE(rep.ok) << rep.error;
  std::vector<SymDecision> ds;
  for (const auto& d : rep.decisions) ds.push_back({d.site, d.taken});
  return ds;
}

TEST(ExecTree, EmptyTreeIsNotComplete) {
  ExecTree tree(ProgramId(1));
  EXPECT_FALSE(tree.complete());
  EXPECT_EQ(tree.num_paths(), 0u);
}

TEST(ExecTree, SinglePathMerge) {
  ExecTree tree(ProgramId(1));
  const auto r =
      tree.add_path({{0, true}, {1, false}}, Outcome::kOk);
  EXPECT_TRUE(r.new_path);
  EXPECT_EQ(r.new_nodes, 2u);
  EXPECT_EQ(r.lca_depth, 0u);
  EXPECT_EQ(tree.num_paths(), 1u);
  EXPECT_EQ(tree.num_nodes(), 3u);  // root + 2
}

TEST(ExecTree, DuplicatePathIsIdempotent) {
  ExecTree tree(ProgramId(1));
  tree.add_path({{0, true}, {1, false}}, Outcome::kOk);
  const auto r = tree.add_path({{0, true}, {1, false}}, Outcome::kOk);
  EXPECT_FALSE(r.new_path);
  EXPECT_EQ(r.new_nodes, 0u);
  EXPECT_EQ(r.lca_depth, 2u);
  EXPECT_EQ(tree.num_paths(), 1u);
  EXPECT_EQ(tree.total_executions(), 2u);
}

TEST(ExecTree, LcaPasteMechanics) {
  // Fig. 3: the second path shares a prefix and pastes only the suffix.
  ExecTree tree(ProgramId(1));
  tree.add_path({{0, true}, {1, true}, {2, true}}, Outcome::kOk);
  const auto r = tree.add_path({{0, true}, {1, false}, {3, true}},
                               Outcome::kOk);
  EXPECT_TRUE(r.new_path);
  EXPECT_EQ(r.lca_depth, 1u);   // diverges after {0,true}
  EXPECT_EQ(r.new_nodes, 2u);   // {1,false} and {3,true}
  EXPECT_EQ(tree.num_paths(), 2u);
}

TEST(ExecTree, FrontierListsUnexploredDirections) {
  ExecTree tree(ProgramId(1));
  tree.add_path({{0, true}, {1, true}}, Outcome::kOk);
  const auto frontiers = tree.frontier();
  // Missing: {0,false} at root and {1,false} under {0,true}.
  ASSERT_EQ(frontiers.size(), 2u);
  // Hottest first: the root has more visits.
  EXPECT_TRUE(frontiers[0].prefix.empty());
  EXPECT_EQ(frontiers[0].site, 0u);
  EXPECT_FALSE(frontiers[0].direction);
}

TEST(ExecTree, FrontierShrinksAsPathsArrive) {
  ExecTree tree(ProgramId(1));
  tree.add_path({{0, true}, {1, true}}, Outcome::kOk);
  EXPECT_EQ(tree.frontier().size(), 2u);
  tree.add_path({{0, true}, {1, false}}, Outcome::kOk);
  EXPECT_EQ(tree.frontier().size(), 1u);
  tree.add_path({{0, false}}, Outcome::kOk);
  EXPECT_EQ(tree.frontier().size(), 0u);
  EXPECT_TRUE(tree.complete());
}

TEST(ExecTree, MarkInfeasibleClosesFrontier) {
  ExecTree tree(ProgramId(1));
  tree.add_path({{0, true}}, Outcome::kOk);
  EXPECT_FALSE(tree.complete());
  EXPECT_TRUE(tree.mark_infeasible({}, 0, false));
  EXPECT_TRUE(tree.complete());
  EXPECT_EQ(tree.frontier().size(), 0u);
}

TEST(ExecTree, MarkInfeasibleRejectsUnknownPoints) {
  ExecTree tree(ProgramId(1));
  tree.add_path({{0, true}}, Outcome::kOk);
  // Prefix that doesn't exist.
  EXPECT_FALSE(tree.mark_infeasible({{9, true}}, 0, false));
  // Site the node does not branch on.
  EXPECT_FALSE(tree.mark_infeasible({}, 5, false));
  // Direction we've actually observed (other dir absent).
  EXPECT_FALSE(tree.mark_infeasible({}, 0, true));
}

TEST(ExecTree, OutcomeCounting) {
  ExecTree tree(ProgramId(1));
  tree.add_path({{0, true}}, Outcome::kOk);
  tree.add_path({{0, false}}, Outcome::kCrash,
                CrashInfo{CrashKind::kDivByZero, 10, 0});
  tree.add_path({{0, false}}, Outcome::kCrash,
                CrashInfo{CrashKind::kDivByZero, 10, 0});
  EXPECT_EQ(tree.paths_with_outcome(Outcome::kOk), 1u);
  EXPECT_EQ(tree.paths_with_outcome(Outcome::kCrash), 1u);  // distinct leaves
  EXPECT_EQ(tree.num_paths(), 2u);
}

TEST(ExecTree, SubtreeStats) {
  ExecTree tree(ProgramId(1));
  tree.add_path({{0, true}, {1, true}}, Outcome::kOk);
  tree.add_path({{0, true}, {1, false}}, Outcome::kOk);
  tree.add_path({{0, false}}, Outcome::kOk);
  const auto stats = tree.stats_at({{0, true}});
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->visits, 2u);
  EXPECT_EQ(stats->leaves, 2u);
  EXPECT_EQ(stats->open_frontiers, 0u);
  EXPECT_FALSE(tree.stats_at({{7, true}}).has_value());
}

TEST(ExecTree, EmptyDecisionPathIsALeafAtRoot) {
  // Programs with no tainted branches produce empty decision streams.
  ExecTree tree(ProgramId(1));
  const auto r = tree.add_path({}, Outcome::kOk);
  EXPECT_TRUE(r.new_path);
  EXPECT_EQ(tree.num_paths(), 1u);
  EXPECT_TRUE(tree.complete());
}

// ------------------------- integration with replay + symbolic ---------------

TEST(ExecTree, NaturalExecutionsBuildConfigSpaceTree) {
  const auto entry = make_config_space(5);
  ExecTree tree(entry.program.id);
  // All 32 inputs -> all 32 paths.
  for (Value mask = 0; mask < 32; ++mask) {
    std::vector<Value> inputs;
    for (int j = 0; j < 5; ++j) inputs.push_back((mask >> j) & 1);
    ExecConfig cfg;
    cfg.inputs = inputs;
    const auto live = execute(entry.program, cfg);
    tree.add_path(decisions_of(entry.program, live.trace),
                  live.trace.outcome);
  }
  EXPECT_EQ(tree.num_paths(), 32u);
  EXPECT_TRUE(tree.complete());
  EXPECT_TRUE(tree.frontier().empty());
}

TEST(ExecTree, PartialCoverageHasFrontiers) {
  const auto entry = make_config_space(5);
  ExecTree tree(entry.program.id);
  for (Value mask = 0; mask < 7; ++mask) {  // 7 of 32
    std::vector<Value> inputs;
    for (int j = 0; j < 5; ++j) inputs.push_back((mask >> j) & 1);
    ExecConfig cfg;
    cfg.inputs = inputs;
    const auto live = execute(entry.program, cfg);
    tree.add_path(decisions_of(entry.program, live.trace),
                  live.trace.outcome);
  }
  EXPECT_EQ(tree.num_paths(), 7u);
  EXPECT_FALSE(tree.complete());
  EXPECT_FALSE(tree.frontier().empty());
}

TEST(ExecTree, SymbolicPathsAndNaturalPathsAgree) {
  // The tree built from exhaustive natural executions equals the tree built
  // from exhaustive symbolic exploration (§3.3's tests==proofs spectrum).
  const auto entry = make_media_parser();

  ExecTree natural(entry.program.id);
  for (Value format = 0; format <= 63; ++format) {
    for (Value size = 0; size <= 255; ++size) {
      ExecConfig cfg;
      cfg.inputs = {format, size};
      const auto live = execute(entry.program, cfg);
      natural.add_path(decisions_of(entry.program, live.trace),
                       live.trace.outcome);
    }
  }

  ExploreOptions opt;
  opt.input_domains = domains_of(entry);
  SymbolicExecutor ex(entry.program, opt);
  ExecTree symbolic(entry.program.id);
  for (const auto& p : ex.explore()) {
    symbolic.add_path(p.decisions, p.terminal == PathTerminal::kCrash
                                       ? Outcome::kCrash
                                       : Outcome::kOk,
                      p.crash);
  }

  EXPECT_EQ(natural.num_paths(), symbolic.num_paths());
  EXPECT_EQ(natural.num_nodes(), symbolic.num_nodes());
  // Neither tree is complete on its own: the crash check site's "survive"
  // direction is infeasible (the divisor is identically zero there) and
  // only symbolic gap closure can refute it. Both trees have the same
  // frontier to close.
  EXPECT_EQ(natural.complete(), symbolic.complete());
  EXPECT_EQ(natural.frontier().size(), symbolic.frontier().size());
}

TEST(ExecTree, CoverageGrowsMonotonically) {
  const auto entry = make_config_space(8);
  ExecTree tree(entry.program.id);
  Rng rng(5);
  std::size_t last = 0;
  for (int i = 0; i < 200; ++i) {
    std::vector<Value> inputs;
    for (int j = 0; j < 8; ++j) inputs.push_back(rng.next_bool() ? 1 : 0);
    ExecConfig cfg;
    cfg.inputs = inputs;
    const auto live = execute(entry.program, cfg);
    tree.add_path(decisions_of(entry.program, live.trace),
                  live.trace.outcome);
    EXPECT_GE(tree.num_paths(), last);
    last = tree.num_paths();
  }
  EXPECT_GT(tree.num_paths(), 100u);  // 200 random draws of 256 paths
  EXPECT_LE(tree.num_paths(), 200u);
}

TEST(ExecTree, DeepPathTraversalsAreStackSafe) {
  // A 20k-decision natural execution (deep loop over tainted input) must
  // merge and answer every query without recursion — the old recursive
  // collect_frontiers/complete_from was a latent stack overflow here.
  constexpr std::uint32_t kDepth = 20'000;
  ExecTree tree(ProgramId(1));
  std::vector<SymDecision> path;
  path.reserve(kDepth);
  for (std::uint32_t i = 0; i < kDepth; ++i) {
    path.push_back({i, (i & 1) == 0});
  }
  const auto r = tree.add_path(path, Outcome::kCrash,
                               CrashInfo{CrashKind::kDivByZero, 3, 0});
  EXPECT_TRUE(r.new_path);
  EXPECT_EQ(r.new_nodes, kDepth);
  EXPECT_EQ(tree.num_nodes(), kDepth + 1);
  EXPECT_EQ(tree.open_frontiers(), kDepth);  // every level has a sibling gap
  EXPECT_FALSE(tree.complete());

  // Budgeted frontier: only the requested prefixes get materialized.
  const auto top = tree.frontier(8);
  ASSERT_EQ(top.size(), 8u);
  EXPECT_TRUE(top[0].prefix.empty());
  EXPECT_EQ(top[0].site, 0u);

  // Subtree stats at the very bottom.
  const auto stats = tree.stats_at(path);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->nodes, 1u);
  EXPECT_EQ(stats->leaves, 1u);
  EXPECT_EQ(stats->open_frontiers, 0u);

  // Counterexample reconstruction walks the full chain.
  const auto cx = tree.find_path_with_outcome(Outcome::kCrash);
  ASSERT_TRUE(cx.has_value());
  EXPECT_EQ(*cx, path);

  // Both wire versions round-trip the deep chain (iterative codec walk).
  for (const auto version :
       {ExecTree::WireVersion::kV1, ExecTree::WireVersion::kV2}) {
    const auto back = ExecTree::decode(tree.encode(version));
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(*back == tree);
    EXPECT_EQ(back->open_frontiers(), kDepth);
  }

  // Deep infeasibility marks bubble the whole parent chain; close the
  // deepest gaps (node ids on a single chain are their depths).
  for (std::uint32_t d = kDepth; d-- > kDepth - 100;) {
    EXPECT_TRUE(tree.mark_infeasible({}, path[d].site, !path[d].taken, d));
  }
  EXPECT_EQ(tree.open_frontiers(), kDepth - 100);
  EXPECT_FALSE(tree.complete());
}

TEST(ExecTree, DeepPathCompletesUnderFullGapClosure) {
  // Smaller chain, but driven all the way to completeness through hinted
  // infeasibility marks — the O(1) complete() bit must flip exactly at the
  // last closure.
  constexpr std::uint32_t kDepth = 2'000;
  ExecTree tree(ProgramId(1));
  std::vector<SymDecision> path;
  for (std::uint32_t i = 0; i < kDepth; ++i) {
    path.push_back({i, true});
  }
  tree.add_path(path, Outcome::kOk);
  for (std::uint32_t d = 0; d < kDepth; ++d) {
    EXPECT_FALSE(tree.complete());
    EXPECT_TRUE(tree.mark_infeasible({}, path[d].site, false, d));
    EXPECT_EQ(tree.open_frontiers(), kDepth - 1 - d);
  }
  EXPECT_TRUE(tree.complete());
  EXPECT_TRUE(tree.frontier().empty());
}

TEST(ExecTree, RandomTrieIncrementalAggregatesMatchScratchRebuild) {
  // Grow a ~10k-node random trie with interleaved gap closures; the
  // incrementally bubbled aggregates must agree exactly with the
  // from-scratch rebuild a codec round-trip performs.
  ExecTree tree(ProgramId(7));
  Rng rng(21);
  std::vector<std::vector<SymDecision>> paths;
  while (tree.num_nodes() < 10'000) {
    std::vector<SymDecision> path;
    const std::size_t len = 1 + rng.next_below(24);
    for (std::size_t d = 0; d < len; ++d) {
      path.push_back({static_cast<std::uint32_t>(rng.next_below(6)),
                      rng.next_bool()});
    }
    const Outcome outcome =
        rng.next_bool(0.1) ? Outcome::kCrash : Outcome::kOk;
    tree.add_path(path, outcome,
                  outcome == Outcome::kCrash
                      ? std::optional<CrashInfo>(
                            CrashInfo{CrashKind::kExplicitAbort, 9, 1})
                      : std::nullopt);
    paths.push_back(std::move(path));
    if (rng.next_bool(0.25)) {
      const auto gaps = tree.frontier(4);
      if (!gaps.empty()) {
        const auto& f = gaps[rng.next_below(gaps.size())];
        EXPECT_TRUE(tree.mark_infeasible(f.prefix, f.site, f.direction,
                                         f.node));
      }
    }
  }

  const auto scratch = ExecTree::decode(tree.encode());
  ASSERT_TRUE(scratch.has_value());
  EXPECT_TRUE(*scratch == tree);
  EXPECT_EQ(scratch->open_frontiers(), tree.open_frontiers());
  EXPECT_EQ(scratch->complete(), tree.complete());
  EXPECT_EQ(scratch->num_paths(), tree.num_paths());

  const auto live = tree.frontier();
  const auto rebuilt = scratch->frontier();
  EXPECT_EQ(live.size(), tree.open_frontiers());
  ASSERT_EQ(live.size(), rebuilt.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i].prefix, rebuilt[i].prefix);
    EXPECT_EQ(live[i].site, rebuilt[i].site);
    EXPECT_EQ(live[i].direction, rebuilt[i].direction);
    EXPECT_EQ(live[i].parent_visits, rebuilt[i].parent_visits);
    EXPECT_EQ(live[i].node, rebuilt[i].node);
  }

  for (int i = 0; i < 50; ++i) {
    auto prefix = paths[rng.next_below(paths.size())];
    prefix.resize(rng.next_below(prefix.size() + 1));
    const auto a = tree.stats_at(prefix);
    const auto b = scratch->stats_at(prefix);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a.has_value()) {
      EXPECT_EQ(a->visits, b->visits);
      EXPECT_EQ(a->leaves, b->leaves);
      EXPECT_EQ(a->nodes, b->nodes);
      EXPECT_EQ(a->open_frontiers, b->open_frontiers);
    }
  }
}

TEST(ExecTree, MergeIsOrderIndependent) {
  // Property: the final tree does not depend on arrival order.
  const auto entry = make_config_space(6);
  std::vector<std::vector<SymDecision>> paths;
  for (Value mask = 0; mask < 64; ++mask) {
    std::vector<Value> inputs;
    for (int j = 0; j < 6; ++j) inputs.push_back((mask >> j) & 1);
    ExecConfig cfg;
    cfg.inputs = inputs;
    const auto live = execute(entry.program, cfg);
    paths.push_back(decisions_of(entry.program, live.trace));
  }

  Rng rng(9);
  for (int round = 0; round < 5; ++round) {
    // Shuffle.
    auto shuffled = paths;
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.next_below(i)]);
    }
    ExecTree tree(entry.program.id);
    for (const auto& p : shuffled) tree.add_path(p, Outcome::kOk);
    EXPECT_EQ(tree.num_paths(), 64u);
    EXPECT_EQ(tree.num_nodes(), 127u);  // full binary trie: 2^7 - 1
    EXPECT_TRUE(tree.complete());
  }
}

}  // namespace
}  // namespace softborg
