file(REMOVE_RECURSE
  "CMakeFiles/minivm_test.dir/minivm_test.cpp.o"
  "CMakeFiles/minivm_test.dir/minivm_test.cpp.o.d"
  "minivm_test"
  "minivm_test.pdb"
  "minivm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minivm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
