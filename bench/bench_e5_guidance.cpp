// E5 — Execution guidance accelerates learning (paper §3.3): "the SoftBorg
// collective obtains the missing traces more rapidly than if it waited for
// the executions to occur naturally".
//
// Three guidance modalities, each against its natural baseline:
//   1. input-seed guidance on config_space(12): executions needed to reach
//      coverage milestones, natural fleet vs guided fleet;
//   2. needle finding on magic_lookup (1 crashing input in 10000): natural
//      expected hitting time vs guidance (the symbolic witness finds it in
//      one directive);
//   3. fault-injection guidance on file_copier: reaching the error-handling
//      path that needs read() < 0.
//
// Expected shape: several-x fewer executions to coverage milestones;
// needle found ~instantly vs ~10^4 natural runs; env-dependent paths reached
// deterministically instead of stochastically.
#include <cstdio>

#include "bench_json.h"
#include "core/softborg.h"

using namespace softborg;

namespace {

std::vector<SymDecision> decisions_of_run(const CorpusEntry& entry,
                                          const std::vector<Value>& inputs,
                                          std::uint64_t seed,
                                          const FaultPlan* faults = nullptr) {
  ExecConfig cfg;
  cfg.inputs = inputs;
  cfg.seed = seed;
  cfg.fault_plan = faults;
  cfg.collect_branch_events = true;
  const auto live = execute(entry.program, cfg);
  std::vector<SymDecision> ds;
  for (const auto& ev : live.branch_events) {
    if (ev.tainted) ds.push_back({ev.site, ev.taken});
  }
  return ds;
}

}  // namespace

int main(int argc, char** argv) {
  BenchJsonWriter json("e5_guidance", argc, argv);
  // ---- 1. coverage milestones --------------------------------------------
  const auto cs = make_config_space(12);
  const std::size_t all_paths = 1u << 12;
  Rng rng(7);

  // Skewed usage so natural coverage saturates (mimics real fleets).
  auto natural_inputs = [&rng]() {
    std::vector<Value> inputs;
    for (int j = 0; j < 12; ++j) {
      inputs.push_back(rng.next_bool(0.15) ? 1 : 0);  // options rarely on
    }
    return inputs;
  };

  ExecTree natural_tree(cs.program.id);
  ExecTree guided_tree(cs.program.id);
  GuidancePlanner planner;

  const std::size_t kBatch = 50;
  const std::size_t kBatches = 60;
  std::printf("# E5.1: coverage vs executions on %s (%zu paths), natural vs "
              "guided (every batch: %zu runs; guided replaces half with "
              "frontier directives)\n",
              cs.program.name.c_str(), all_paths, kBatch);
  std::printf("%-12s %-14s %-14s\n", "executions", "natural_paths",
              "guided_paths");

  std::uint64_t seed = 1;
  for (std::size_t b = 1; b <= kBatches; ++b) {
    for (std::size_t i = 0; i < kBatch; ++i) {
      natural_tree.add_path(decisions_of_run(cs, natural_inputs(), seed++),
                            Outcome::kOk);
    }
    // Guided fleet: half natural, half directed at the frontier.
    const auto directives = planner.plan_frontier(cs, guided_tree, kBatch / 2);
    for (const auto& d : directives) {
      guided_tree.add_path(decisions_of_run(cs, *d.input_seed, seed++),
                           Outcome::kOk);
    }
    for (std::size_t i = directives.size(); i < kBatch; ++i) {
      guided_tree.add_path(decisions_of_run(cs, natural_inputs(), seed++),
                           Outcome::kOk);
    }
    if (b % 6 == 0) {
      std::printf("%-12zu %-14zu %-14zu\n", b * kBatch,
                  natural_tree.num_paths(), guided_tree.num_paths());
    }
  }
  std::printf("final: natural %zu vs guided %zu paths (%.1fx)\n\n",
              natural_tree.num_paths(), guided_tree.num_paths(),
              static_cast<double>(guided_tree.num_paths()) /
                  static_cast<double>(natural_tree.num_paths()));
  json.add("config_space_12", "guided_paths",
           static_cast<double>(guided_tree.num_paths()),
           static_cast<double>(natural_tree.num_paths()));

  // ---- 2. the needle -------------------------------------------------------
  const auto needle = make_magic_lookup();
  std::uint64_t natural_runs_to_find = 0;
  {
    Rng nr(99);
    for (std::uint64_t n = 1; n <= 200'000; ++n) {
      ExecConfig cfg;
      cfg.inputs = {nr.next_in(0, 9999)};
      if (execute(needle.program, cfg).trace.outcome == Outcome::kCrash) {
        natural_runs_to_find = n;
        break;
      }
    }
  }
  // Guided: observe one natural run, then ask the planner for the frontier.
  ExecTree needle_tree(needle.program.id);
  needle_tree.add_path(decisions_of_run(needle, {7}, 1), Outcome::kOk);
  const auto directives = planner.plan_frontier(needle, needle_tree, 4);
  std::uint64_t guided_runs_to_find = 0;
  for (std::size_t i = 0; i < directives.size(); ++i) {
    ExecConfig cfg;
    cfg.inputs = *directives[i].input_seed;
    if (execute(needle.program, cfg).trace.outcome == Outcome::kCrash) {
      guided_runs_to_find = i + 2;  // the 1 natural run + directives so far
      break;
    }
  }
  std::printf("# E5.2: needle (1 crashing input of 10000)\n");
  std::printf("natural executions to first crash: %llu\n",
              static_cast<unsigned long long>(natural_runs_to_find));
  std::printf("guided executions to first crash:  %llu  (%.0fx faster)\n\n",
              static_cast<unsigned long long>(guided_runs_to_find),
              guided_runs_to_find
                  ? static_cast<double>(natural_runs_to_find) /
                        static_cast<double>(guided_runs_to_find)
                  : 0.0);

  json.add("magic_lookup_needle", "guided_runs_to_crash",
           static_cast<double>(guided_runs_to_find),
           static_cast<double>(natural_runs_to_find));

  // ---- 3. fault injection ---------------------------------------------------
  const auto copier = make_file_copier();
  // Natural: how many runs until read() happens to fail (reaching the error
  // path needs result < 0, probability ~5% per read)?
  std::uint64_t natural_to_error_path = 0;
  for (std::uint64_t s = 1; s <= 10'000; ++s) {
    ExecConfig cfg;
    cfg.inputs = {10, 1};
    cfg.seed = 5'000'000 + s;
    const auto r = execute(copier.program, cfg);
    if (r.trace.outcome == Outcome::kOk && !r.outputs.empty() &&
        r.outputs[0] == -1) {
      natural_to_error_path = s;
      break;
    }
  }
  // Guided: one observation, then a fault-plan directive.
  ExecTree copier_tree(copier.program.id);
  copier_tree.add_path(decisions_of_run(copier, {10, 1}, 12345),
                       Outcome::kOk);
  const auto fault_directives = planner.plan_frontier(copier, copier_tree, 6);
  std::uint64_t guided_to_error_path = 0;
  for (std::size_t i = 0; i < fault_directives.size(); ++i) {
    const auto& d = fault_directives[i];
    ExecConfig cfg;
    cfg.inputs = d.input_seed ? *d.input_seed : std::vector<Value>{10, 1};
    if (d.faults) cfg.fault_plan = &*d.faults;
    const auto r = execute(copier.program, cfg);
    if (r.trace.outcome == Outcome::kOk && !r.outputs.empty() &&
        r.outputs[0] == -1) {
      guided_to_error_path = i + 2;
      break;
    }
  }
  std::printf("# E5.3: syscall-failure path of %s\n",
              copier.program.name.c_str());
  std::printf("natural executions to reach the error path: %llu\n",
              static_cast<unsigned long long>(natural_to_error_path));
  std::printf("guided (fault-injection) executions:        %llu\n",
              static_cast<unsigned long long>(guided_to_error_path));
  json.add("file_copier_fault", "guided_runs_to_error_path",
           static_cast<double>(guided_to_error_path),
           static_cast<double>(natural_to_error_path));
  return json.write() ? 0 : 1;
}
