// Tests for the extended corpus (dining philosophers, retry storm, skewed
// workload) and the hive's knowledge-maintenance features built on them:
// proof revocation on fix distribution and fix-effectiveness monitoring.
#include <gtest/gtest.h>

#include "hive/hive.h"
#include "minivm/corpus.h"
#include "minivm/interp.h"

namespace softborg {
namespace {

// ------------------------------------------------- dining philosophers -----

TEST(DiningPhilosophers, ValidatesForAllSizes) {
  for (unsigned n = 2; n <= 6; ++n) {
    const auto entry = make_dining_philosophers(n);
    std::string err;
    EXPECT_TRUE(entry.program.validate(&err)) << err;
    EXPECT_EQ(entry.program.num_threads(), n);
    EXPECT_EQ(entry.program.num_locks, n);
  }
}

TEST(DiningPhilosophers, DeadlocksUnderSomeSchedule) {
  const auto entry = make_dining_philosophers(3);
  int deadlocks = 0, oks = 0;
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    ExecConfig cfg;
    cfg.seed = seed;
    const auto outcome = execute(entry.program, cfg).trace.outcome;
    if (outcome == Outcome::kDeadlock) deadlocks++;
    if (outcome == Outcome::kOk) oks++;
  }
  EXPECT_GT(deadlocks, 0);
  EXPECT_GT(oks, 0);
}

TEST(DiningPhilosophers, CycleDiagnosisCoversAllForks) {
  const auto entry = make_dining_philosophers(3);
  LockOrderAnalyzer analyzer;
  int fed = 0;
  for (std::uint64_t seed = 1; seed <= 300 && fed < 5; ++seed) {
    ExecConfig cfg;
    cfg.seed = seed;
    const auto result = execute(entry.program, cfg);
    if (result.trace.outcome != Outcome::kDeadlock) continue;
    analyzer.add_trace(result.trace);
    fed++;
  }
  ASSERT_GT(fed, 0);
  const auto cycles = analyzer.cycles();
  ASSERT_FALSE(cycles.empty());
  // The full 3-cycle {0,1,2} must be among the diagnosed cycles.
  bool full_cycle = false;
  for (const auto& c : cycles) {
    if (c.size() == 3) full_cycle = true;
  }
  EXPECT_TRUE(full_cycle);
}

TEST(DiningPhilosophers, ImmunityFixEliminatesDeadlock) {
  const auto entry = make_dining_philosophers(3);
  FixSet fixes;
  fixes.lock_fixes.push_back({FixId(1), entry.program.id, {0, 1, 2}});
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    ExecConfig cfg;
    cfg.seed = seed;
    cfg.fixes = &fixes;
    const auto result = execute(entry.program, cfg);
    EXPECT_EQ(result.trace.outcome, Outcome::kOk) << "seed " << seed;
  }
}

TEST(DiningPhilosophers, EndToEndHiveFix) {
  std::vector<CorpusEntry> corpus;
  corpus.push_back(make_dining_philosophers(3));
  Hive hive(&corpus);
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    ExecConfig cfg;
    cfg.seed = seed;
    auto result = execute(corpus[0].program, cfg);
    result.trace.id = TraceId(seed);
    if (result.trace.outcome == Outcome::kDeadlock) hive.ingest(result.trace);
  }
  ASSERT_EQ(hive.bug_tracker().count(BugKind::kDeadlock), 1u);
  const auto fixes = hive.process();
  ASSERT_EQ(fixes.size(), 1u);
  const auto& fix = std::get<LockAvoidanceFix>(fixes[0].fix);
  EXPECT_EQ(fix.cycle_locks.size(), 3u);
  EXPECT_GE(fixes[0].score(), 0.9);
}

// ------------------------------------------------------- retry storm -------

TEST(RetryStorm, SucceedsOnHealthyEnvironment) {
  const auto entry = make_retry_storm();
  int oks = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    ExecConfig cfg;
    cfg.inputs = {1, 10};
    cfg.seed = seed;
    cfg.max_steps = 5'000;
    if (execute(entry.program, cfg).trace.outcome == Outcome::kOk) oks++;
  }
  EXPECT_GT(oks, 95);  // three consecutive failures are rare
}

TEST(RetryStorm, WedgesOnForcedFailuresInStrictMode) {
  const auto entry = make_retry_storm();
  FaultPlan faults;
  faults.forced[0] = -1;
  faults.forced[1] = -1;
  faults.forced[2] = -1;
  ExecConfig cfg;
  cfg.inputs = {1, 10};  // strict mode
  cfg.fault_plan = &faults;
  cfg.max_steps = 5'000;
  EXPECT_EQ(execute(entry.program, cfg).trace.outcome, Outcome::kHang);
}

TEST(RetryStorm, NonStrictModeRecovers) {
  const auto entry = make_retry_storm();
  FaultPlan faults;
  for (std::uint32_t i = 0; i < 5; ++i) faults.forced[i] = -1;
  ExecConfig cfg;
  cfg.inputs = {0, 10};  // strict off: retries until success
  cfg.fault_plan = &faults;
  cfg.max_steps = 5'000;
  EXPECT_EQ(execute(entry.program, cfg).trace.outcome, Outcome::kOk);
}

TEST(RetryStorm, HangBugLandsInHiveAsHangKind) {
  const auto entry = make_retry_storm();
  std::vector<CorpusEntry> corpus;
  corpus.push_back(make_retry_storm());
  Hive hive(&corpus);

  FaultPlan faults;
  faults.forced[0] = -1;
  faults.forced[1] = -1;
  faults.forced[2] = -1;
  ExecConfig cfg;
  cfg.inputs = {1, 10};
  cfg.fault_plan = &faults;
  cfg.max_steps = 5'000;
  auto result = execute(entry.program, cfg);
  ASSERT_EQ(result.trace.outcome, Outcome::kHang);
  result.trace.id = TraceId(1);
  hive.ingest(result.trace);
  EXPECT_EQ(hive.bug_tracker().count(BugKind::kHang), 1u);
  // Hangs are not auto-fixable.
  EXPECT_TRUE(hive.process().empty());
}

// --------------------------------------------------- skewed workload -------

TEST(SkewedWorkload, CostSkewIsReal) {
  const auto entry = make_skewed_workload(6, /*heavy_iterations=*/24);
  ExecConfig heavy_cfg, light_cfg;
  heavy_cfg.inputs = {1, 0, 0, 0, 0, 0};
  light_cfg.inputs = {0, 0, 0, 0, 0, 0};
  const auto heavy = execute(entry.program, heavy_cfg);
  const auto light = execute(entry.program, light_cfg);
  EXPECT_EQ(heavy.trace.outcome, Outcome::kOk);
  EXPECT_EQ(light.trace.outcome, Outcome::kOk);
  EXPECT_GT(heavy.trace.steps, 3 * light.trace.steps);
  // The loop is deterministic: both record exactly k bits.
  EXPECT_EQ(heavy.trace.branch_bits.size(), 6u);
  EXPECT_EQ(light.trace.branch_bits.size(), 6u);
}

// --------------------------------------- knowledge maintenance (hive) ------

TEST(HiveKnowledge, FixRevokesProofs) {
  std::vector<CorpusEntry> corpus;
  corpus.push_back(make_media_parser());
  Hive hive(&corpus);

  // A publishable proof first (always-terminates holds).
  const auto cert = hive.attempt_proof(corpus[0].program.id,
                                       Property::kAlwaysTerminates);
  ASSERT_TRUE(cert.publishable());
  EXPECT_EQ(hive.valid_proof_count(), 1u);

  // Now a crash arrives and a fix ships: the proof no longer describes the
  // deployed program.
  ExecConfig cfg;
  cfg.inputs = {13, 250};
  auto result = execute(corpus[0].program, cfg);
  result.trace.id = TraceId(1);
  hive.ingest(result.trace);
  ASSERT_FALSE(hive.process().empty());
  EXPECT_EQ(hive.valid_proof_count(), 0u);
  EXPECT_EQ(hive.stats().proofs_revoked, 1u);
  ASSERT_EQ(hive.published_proofs().size(), 1u);
  EXPECT_TRUE(hive.published_proofs()[0].revoked);
}

TEST(HiveKnowledge, RecurringFailuresReopenFixedBugs) {
  std::vector<CorpusEntry> corpus;
  corpus.push_back(make_media_parser());
  Hive hive(&corpus);

  ExecConfig cfg;
  cfg.inputs = {13, 250};
  auto first = execute(corpus[0].program, cfg);
  first.trace.id = TraceId(1);
  hive.ingest(first.trace);
  ASSERT_FALSE(hive.process().empty());
  ASSERT_TRUE(hive.bug_tracker().open_bugs().empty());

  // The same signature keeps arriving well past the propagation grace
  // window (fix not effective).
  for (std::uint64_t i = 2; i <= 4; ++i) {
    auto again = execute(corpus[0].program, cfg);
    again.trace.id = TraceId(i);
    again.trace.day = 10;  // far beyond fixed_day + grace
    hive.ingest(again.trace);
  }
  EXPECT_EQ(hive.stats().fix_recurrences, 3u);
  EXPECT_EQ(hive.stats().bugs_reopened, 1u);
  EXPECT_EQ(hive.bug_tracker().open_bugs().size(), 1u);
  // process() will now try again (idempotence reset on reopen).
  EXPECT_FALSE(hive.process().empty());
}

TEST(HiveKnowledge, PatchedTracesCountedAsTelemetry) {
  std::vector<CorpusEntry> corpus;
  corpus.push_back(make_media_parser());
  Hive hive(&corpus);
  Trace t;
  t.program = corpus[0].program.id;
  t.id = TraceId(1);
  t.patched = true;
  t.outcome = Outcome::kOk;
  hive.ingest(t);
  EXPECT_EQ(hive.stats().fixed_traces_seen, 1u);
  EXPECT_EQ(hive.stats().patched_traces_skipped, 1u);  // never tree-merged
}

}  // namespace
}  // namespace softborg
