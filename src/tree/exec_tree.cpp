#include "tree/exec_tree.h"

#include <algorithm>

#include "common/check.h"

namespace softborg {

std::uint32_t ExecTree::find_child(const Node& n, std::uint32_t site,
                                   bool dir) const {
  for (const auto& e : n.edges) {
    if (e.site == site && e.dir == dir) return e.child;
  }
  return 0;  // 0 is the root and never a child: "not found"
}

bool ExecTree::is_infeasible(const Node& n, std::uint32_t site,
                             bool dir) const {
  for (const auto& [s, d] : n.infeasible) {
    if (s == site && d == dir) return true;
  }
  return false;
}

ExecTree::MergeResult ExecTree::add_path(
    const std::vector<SymDecision>& decisions, Outcome outcome,
    const std::optional<CrashInfo>& crash, std::uint64_t weight) {
  MergeResult result;
  if (weight == 0) return result;
  std::uint32_t cur = 0;
  nodes_[0].visits += weight;

  std::size_t depth = 0;
  // Walk the shared prefix — the LCA is where we stop matching.
  for (; depth < decisions.size(); ++depth) {
    const auto& d = decisions[depth];
    const std::uint32_t child = find_child(nodes_[cur], d.site, d.taken);
    if (child == 0) break;
    cur = child;
    nodes_[cur].visits += weight;
  }
  result.lca_depth = depth;

  // Paste the divergent suffix. Reserve the whole suffix in one step, but
  // never below doubling — an exact-fit reserve would reallocate (and copy
  // every node) on each paste, degrading tree growth to quadratic.
  const std::size_t needed = nodes_.size() + (decisions.size() - depth);
  if (nodes_.capacity() < needed) {
    nodes_.reserve(std::max(needed, nodes_.capacity() * 2));
  }
  for (; depth < decisions.size(); ++depth) {
    const auto& d = decisions[depth];
    const std::uint32_t child = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Node{});
    nodes_[cur].edges.push_back({d.site, d.taken, child});
    cur = child;
    nodes_[cur].visits += weight;
    result.new_nodes++;
  }

  // Terminal bookkeeping.
  Node& leaf = nodes_[cur];
  bool outcome_seen = false;
  for (auto& [o, count] : leaf.outcomes) {
    if (o == outcome) {
      count += weight;
      outcome_seen = true;
    }
  }
  if (!outcome_seen) {
    if (leaf.outcomes.empty()) {
      num_leaves_++;
      result.new_path = true;
    }
    leaf.outcomes.push_back({outcome, weight});
  }
  if (crash.has_value() && !leaf.crash.has_value()) leaf.crash = crash;
  result.leaf = cur;
  return result;
}

const ExecTree::Node* ExecTree::walk(
    const std::vector<SymDecision>& prefix) const {
  std::uint32_t cur = 0;
  for (const auto& d : prefix) {
    const std::uint32_t child = find_child(nodes_[cur], d.site, d.taken);
    if (child == 0) return nullptr;
    cur = child;
  }
  return &nodes_[cur];
}

bool ExecTree::mark_infeasible(const std::vector<SymDecision>& prefix,
                               std::uint32_t site, bool dir,
                               std::optional<std::uint32_t> node_hint) {
  std::uint32_t cur = 0;
  if (node_hint.has_value() && *node_hint < nodes_.size()) {
    cur = *node_hint;
  } else {
    for (const auto& d : prefix) {
      const std::uint32_t child = find_child(nodes_[cur], d.site, d.taken);
      if (child == 0) return false;
      cur = child;
    }
  }
  Node& n = nodes_[cur];
  // The node must actually branch on `site` in the other direction —
  // otherwise this infeasibility claim is about a point we know nothing of.
  if (find_child(n, site, !dir) == 0) return false;
  if (!is_infeasible(n, site, dir)) n.infeasible.push_back({site, dir});
  return true;
}

std::uint64_t ExecTree::paths_with_outcome(Outcome o) const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) {
    for (const auto& [outcome, count] : n.outcomes) {
      if (outcome == o) total++;  // distinct leaves, not executions
    }
  }
  return total;
}

std::optional<std::vector<SymDecision>> ExecTree::find_path_with_outcome(
    Outcome o) const {
  std::vector<SymDecision> prefix;
  // Iterative DFS carrying the prefix.
  struct Item {
    std::uint32_t idx;
    std::size_t depth;
    SymDecision via;
  };
  std::vector<Item> stack{{0, 0, {}}};
  bool first = true;
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    prefix.resize(item.depth);
    if (!first) prefix.push_back(item.via);
    first = false;
    const Node& n = nodes_[item.idx];
    for (const auto& [outcome, count] : n.outcomes) {
      if (outcome == o) return prefix;
    }
    for (const auto& e : n.edges) {
      stack.push_back({e.child, prefix.size(), {e.site, e.dir}});
    }
  }
  return std::nullopt;
}

void ExecTree::collect_frontiers(std::uint32_t idx,
                                 std::vector<SymDecision>& prefix,
                                 std::vector<Frontier>& out) const {
  const Node& n = nodes_[idx];
  // Group edges by site; a site with exactly one direction observed and the
  // other not proven infeasible is a frontier.
  for (const auto& e : n.edges) {
    const bool other_dir = !e.dir;
    if (find_child(n, e.site, other_dir) == 0 &&
        !is_infeasible(n, e.site, other_dir)) {
      Frontier f;
      f.prefix = prefix;
      f.site = e.site;
      f.direction = other_dir;
      f.parent_visits = n.visits;
      f.node = idx;
      out.push_back(std::move(f));
    }
  }
  for (const auto& e : n.edges) {
    prefix.push_back({e.site, e.dir});
    collect_frontiers(e.child, prefix, out);
    prefix.pop_back();
  }
}

std::vector<ExecTree::Frontier> ExecTree::frontier(
    std::size_t max_items) const {
  std::vector<Frontier> out;
  std::vector<SymDecision> prefix;
  collect_frontiers(0, prefix, out);
  std::stable_sort(out.begin(), out.end(),
                   [](const Frontier& a, const Frontier& b) {
                     return a.parent_visits > b.parent_visits;
                   });
  if (out.size() > max_items) out.resize(max_items);
  return out;
}

bool ExecTree::complete_from(std::uint32_t idx) const {
  const Node& n = nodes_[idx];
  for (const auto& e : n.edges) {
    if (find_child(n, e.site, !e.dir) == 0 &&
        !is_infeasible(n, e.site, !e.dir)) {
      return false;
    }
    if (!complete_from(e.child)) return false;
  }
  return true;
}

bool ExecTree::complete() const {
  if (nodes_[0].visits == 0) return false;  // nothing observed yet
  return complete_from(0);
}

void ExecTree::subtree_stats(std::uint32_t idx, SubtreeStats& stats) const {
  const Node& n = nodes_[idx];
  stats.nodes++;
  if (!n.outcomes.empty()) stats.leaves++;
  for (const auto& e : n.edges) {
    if (find_child(n, e.site, !e.dir) == 0 &&
        !is_infeasible(n, e.site, !e.dir)) {
      stats.open_frontiers++;
    }
    subtree_stats(e.child, stats);
  }
}

std::optional<ExecTree::SubtreeStats> ExecTree::stats_at(
    const std::vector<SymDecision>& prefix) const {
  const Node* n = walk(prefix);
  if (n == nullptr) return std::nullopt;
  SubtreeStats stats;
  stats.visits = n->visits;
  subtree_stats(static_cast<std::uint32_t>(n - nodes_.data()), stats);
  return stats;
}

std::string ExecTree::to_string() const {
  std::string out;
  struct Item {
    std::uint32_t idx;
    int depth;
  };
  std::vector<Item> stack{{0, 0}};
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    const Node& n = nodes_[item.idx];
    out.append(static_cast<std::size_t>(item.depth) * 2, ' ');
    out += "node visits=" + std::to_string(n.visits);
    for (const auto& [o, count] : n.outcomes) {
      out += std::string(" ") + outcome_name(o) + "x" + std::to_string(count);
    }
    out += "\n";
    for (auto it = n.edges.rbegin(); it != n.edges.rend(); ++it) {
      out.append(static_cast<std::size_t>(item.depth) * 2 + 1, ' ');
      out += "s" + std::to_string(it->site) + (it->dir ? "/T" : "/F") + "\n";
      stack.push_back({it->child, item.depth + 1});
    }
  }
  return out;
}

}  // namespace softborg
