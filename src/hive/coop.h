// Cooperative symbolic execution (paper §4).
//
// The hive parallelizes exploration of a program's execution tree across
// worker nodes that are "mostly end-user machines communicating over a
// potentially unreliable network". This module simulates that deployment
// end to end on SimNet, with three partitioning strategies to compare:
//
//   * kStatic    — the tree is split once, up front, into depth-k prefix
//     units assigned round-robin. Finding a good static partition is
//     undecidable (the tree's shape is unknown until explored), so skewed
//     subtrees straggle, and a dead worker stalls its whole share.
//   * kDynamic   — Cloud9-style [4]: one global queue of units; idle
//     workers pull; lost assignments are detected and re-queued.
//   * kPortfolio — dynamic, plus modern-portfolio-theory allocation [20]:
//     top-level subtrees are "equities" with an observed return (paths
//     closed per unit of work) and risk (cost variance); idle workers are
//     invested in the equity with the best risk-adjusted return, with an
//     optimism bonus for unexplored equities (speculation/diversification).
//
// Work costs are real: units carry the per-path symbolic-execution step
// counts measured by the SymbolicExecutor, so heterogeneity (loops, deep
// subtrees) is faithful. The network is lossy/latent; workers churn.
#pragma once

#include <cstdint>

#include "minivm/corpus.h"
#include "net/simnet.h"

namespace softborg {

class SolverCache;
class YieldLedger;

enum class PartitionStrategy : std::uint8_t {
  kStatic = 0,
  kDynamic = 1,
  kPortfolio = 2,
};

const char* strategy_name(PartitionStrategy s);

struct CoopConfig {
  std::size_t num_workers = 4;
  PartitionStrategy strategy = PartitionStrategy::kDynamic;
  std::uint64_t steps_per_tick = 2'000;  // per-worker throughput
  double churn_prob = 0.0;               // P(worker dies) per busy tick
  std::uint64_t respawn_ticks = 25;
  std::uint64_t death_detect_ticks = 15;  // coordinator timeout
  std::size_t split_depth = 4;            // prefix depth defining work units
  NetConfig net;
  std::uint64_t seed = 1;
  std::uint64_t max_ticks = 2'000'000;
  // Optional solver-result recycling cache for the ground-truth exploration
  // (sym/solver_cache.h). Not owned; the caller serializes access — the
  // simulation itself runs on one thread.
  SolverCache* solver_cache = nullptr;
  // Optional adaptive ledger (hive/adapt.h). When set, kPortfolio seeds its
  // per-equity cost estimates from the ledger's cross-run priors instead of
  // starting cold, and the run writes the observed per-equity mean unit
  // costs back at the epilogue — the paper's collective recycling applied
  // to the allocator itself. Not owned; null keeps the historical cold
  // start. Deterministic: allocation becomes a pure function of
  // (entry, config, ledger state).
  YieldLedger* yield = nullptr;
};

struct CoopResult {
  std::uint64_t ticks = 0;          // wall-clock ticks to completion
  std::size_t paths_explored = 0;
  bool complete = false;
  std::uint64_t messages = 0;
  std::size_t worker_deaths = 0;
  std::uint64_t wasted_steps = 0;   // work lost to churn and redone
  std::uint64_t useful_steps = 0;
  std::uint64_t idle_ticks = 0;     // worker-ticks spent waiting for work
  // Which strategy produced this result — carried so downstream consumers
  // (DayMetrics, hive_status_report) can attribute outcomes per strategy.
  PartitionStrategy strategy = PartitionStrategy::kDynamic;
};

// Explores `entry`'s full execution tree cooperatively and reports how the
// chosen strategy performed. Deterministic in (entry, config).
CoopResult run_cooperative_exploration(const CorpusEntry& entry,
                                       const CoopConfig& config);

}  // namespace softborg
