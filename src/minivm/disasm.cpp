#include "minivm/disasm.h"

#include <cstdio>

namespace softborg {

std::string disassemble_instr(const Instr& ins, std::uint32_t pc) {
  char buf[128];
  switch (ins.op) {
    case Op::kConst:
      std::snprintf(buf, sizeof(buf), "%4u: const r%u = %lld", pc, ins.a,
                    static_cast<long long>(ins.imm));
      break;
    case Op::kMov:
      std::snprintf(buf, sizeof(buf), "%4u: mov   r%u = r%u", pc, ins.a,
                    ins.b);
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kCmpLt:
    case Op::kCmpLe:
    case Op::kCmpEq:
    case Op::kCmpNe:
      std::snprintf(buf, sizeof(buf), "%4u: %-5s r%u = r%u, r%u", pc,
                    op_name(ins.op), ins.a, ins.b, ins.c);
      break;
    case Op::kBranchIf:
      std::snprintf(buf, sizeof(buf),
                    "%4u: brif  r%u ? ->%u : ->%u   (site %u)", pc, ins.a,
                    ins.b, ins.c, ins.site);
      break;
    case Op::kJump:
      std::snprintf(buf, sizeof(buf), "%4u: jump  ->%u", pc, ins.a);
      break;
    case Op::kInput:
      std::snprintf(buf, sizeof(buf), "%4u: input r%u = in[%u]", pc, ins.a,
                    ins.b);
      break;
    case Op::kSyscall:
      std::snprintf(buf, sizeof(buf), "%4u: sys   r%u = sys%u(r%u)", pc,
                    ins.a, ins.b, ins.c);
      break;
    case Op::kLoadG:
      std::snprintf(buf, sizeof(buf), "%4u: loadg r%u = g[%u]", pc, ins.a,
                    ins.b);
      break;
    case Op::kStoreG:
      std::snprintf(buf, sizeof(buf), "%4u: storg g[%u] = r%u", pc, ins.a,
                    ins.b);
      break;
    case Op::kLock:
      std::snprintf(buf, sizeof(buf), "%4u: lock  L%u", pc, ins.a);
      break;
    case Op::kUnlock:
      std::snprintf(buf, sizeof(buf), "%4u: unlck L%u", pc, ins.a);
      break;
    case Op::kAssert:
      std::snprintf(buf, sizeof(buf), "%4u: asert r%u (msg %u)", pc, ins.a,
                    ins.b);
      break;
    case Op::kAbort:
      std::snprintf(buf, sizeof(buf), "%4u: abort (%u)", pc, ins.a);
      break;
    case Op::kOutput:
      std::snprintf(buf, sizeof(buf), "%4u: out   r%u", pc, ins.a);
      break;
    case Op::kYield:
      std::snprintf(buf, sizeof(buf), "%4u: yield", pc);
      break;
    case Op::kHalt:
      std::snprintf(buf, sizeof(buf), "%4u: halt", pc);
      break;
  }
  return buf;
}

std::string disassemble(const Program& p) {
  std::string out = "program '" + p.name + "' (id " +
                    std::to_string(p.id.value) + "): " +
                    std::to_string(p.code.size()) + " instrs, " +
                    std::to_string(p.num_threads()) + " thread(s), " +
                    std::to_string(p.num_inputs) + " input(s), " +
                    std::to_string(p.num_branch_sites) + " branch site(s)\n";
  for (std::uint32_t pc = 0; pc < p.code.size(); ++pc) {
    for (std::size_t t = 0; t < p.thread_entries.size(); ++t) {
      if (p.thread_entries[t] == pc) {
        out += "     --- thread " + std::to_string(t) + " ---\n";
      }
    }
    out += disassemble_instr(p.code[pc], pc) + "\n";
  }
  return out;
}

}  // namespace softborg
