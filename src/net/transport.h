// Transport: the seam between the hive's pump loops and whatever carries
// the bytes.
//
// The paper's pods feed the hive "over the Internet" (§3); our test fleets
// feed it through the deterministic SimNet. Both present the same surface —
// numbered endpoints, typed messages, explicit progress — so ShardedHive
// and the distributed router/worker loops (src/dist) are written once
// against this interface and every SimNet-based differential suite keeps
// pinning byte-identical results while production deployments swap in the
// socket transport.
//
// Contract:
//  * Endpoints are small dense indices issued by add_endpoint().
//  * send() queues; nothing moves until step() (SimNet: one tick; socket
//    hubs: one poll/flush round). Payloads are moved end-to-end — a
//    transport must never copy a payload it can move (net_test pins this).
//  * drain() removes and returns everything delivered to an endpoint, in
//    delivery order. Delivery order for one (from, to) pair preserves send
//    order unless the transport injects faults.
#pragma once

#include <cstdint>
#include <vector>

#include "common/varint.h"

namespace softborg {

using Endpoint = std::uint64_t;

struct Message {
  Endpoint from = 0;
  Endpoint to = 0;
  std::uint32_t type = 0;
  Bytes payload;
  std::uint64_t sent_tick = 0;
  std::uint64_t deliver_tick = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual Endpoint add_endpoint() = 0;

  // Queues a message for delivery; the transport owns the payload from here
  // on (and moves it — no copies on the forwarding path).
  virtual void send(Endpoint from, Endpoint to, std::uint32_t type,
                    Bytes payload) = 0;

  // Makes queued traffic progress: SimNet advances one tick; a socket
  // transport flushes write buffers and reads whatever arrived.
  virtual void step() = 0;

  // Removes and returns everything delivered to `ep` so far.
  virtual std::vector<Message> drain(Endpoint ep) = 0;
};

}  // namespace softborg
