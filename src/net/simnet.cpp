#include "net/simnet.h"

#include <utility>

#include "common/check.h"
#include "obs/registry.h"

namespace softborg {

namespace {
// Network telemetry mirroring NetStats, but process-wide: every SimNet
// instance feeds the same counters, so a fleet with several nets (tests,
// nested worlds) reports aggregate traffic. Counters advance at tick
// boundaries (publish_metrics), never per message. `net.in_flight` is a
// gauge of messages currently queued for delivery — a depth, not a count,
// so it is exported but excluded from the deterministic counter surface.
struct NetMetrics {
  obs::Counter& sent =
      obs::MetricsRegistry::global().counter("net.sent_total");
  obs::Counter& delivered =
      obs::MetricsRegistry::global().counter("net.delivered_total");
  obs::Counter& dropped =
      obs::MetricsRegistry::global().counter("net.dropped_total");
  obs::Counter& duplicated =
      obs::MetricsRegistry::global().counter("net.duplicated_total");
  obs::Counter& blocked_at_send =
      obs::MetricsRegistry::global().counter("net.blocked_at_send_total");
  obs::Counter& dropped_in_flight =
      obs::MetricsRegistry::global().counter("net.dropped_in_flight_total");
  obs::Counter& bytes_sent =
      obs::MetricsRegistry::global().counter("net.bytes_sent_total");
  obs::Counter& payloads_copied =
      obs::MetricsRegistry::global().counter("net.payloads_copied_total");
  obs::Gauge& in_flight = obs::MetricsRegistry::global().gauge("net.in_flight");

  static NetMetrics& get() {
    static NetMetrics m;
    return m;
  }
};
}  // namespace

Endpoint SimNet::add_endpoint() {
  inboxes_.emplace_back();
  return static_cast<Endpoint>(inboxes_.size() - 1);
}

bool SimNet::blocked(Endpoint a, Endpoint b) const {
  if (isolated_.count(a) != 0 || isolated_.count(b) != 0) return true;
  const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  return partitions_.count(key) != 0;
}

void SimNet::send(Endpoint from, Endpoint to, std::uint32_t type,
                  Bytes payload) {
  SB_CHECK(from < inboxes_.size() && to < inboxes_.size());
  stats_.sent++;
  stats_.bytes_sent += payload.size();
  if (blocked(from, to)) {
    stats_.blocked_at_send++;
    return;
  }
  if (config_.drop_prob > 0 && rng_.next_bool(config_.drop_prob)) {
    stats_.dropped++;
    return;
  }
  auto enqueue = [&](Bytes body) {
    Message m;
    m.from = from;
    m.to = to;
    m.type = type;
    m.payload = std::move(body);
    m.sent_tick = now_;
    const std::uint32_t span =
        config_.max_latency_ticks - config_.min_latency_ticks;
    m.deliver_tick = now_ + config_.min_latency_ticks +
                     (span > 0 ? rng_.next_below(span + 1) : 0);
    in_flight_[m.deliver_tick].push_back(std::move(m));
    queued_++;
  };
  if (config_.dup_prob > 0 && rng_.next_bool(config_.dup_prob)) {
    stats_.duplicated++;
    stats_.payloads_copied++;  // the manufactured duplicate body
    enqueue(payload);
  }
  enqueue(std::move(payload));
}

void SimNet::tick() {
  now_++;
  auto end = in_flight_.upper_bound(now_);
  for (auto it = in_flight_.begin(); it != end; ++it) {
    queued_ -= static_cast<std::int64_t>(it->second.size());
    for (Message& m : it->second) {
      if (blocked(m.from, m.to)) {
        stats_.dropped_in_flight++;
        continue;  // partitions that formed mid-flight eat the message
      }
      stats_.delivered++;
      inboxes_[m.to].push_back(std::move(m));
    }
  }
  in_flight_.erase(in_flight_.begin(), end);
  publish_metrics();
}

void SimNet::publish_metrics() {
  if (!obs::enabled()) {
    // Kill switch: drop the outstanding deltas instead of deferring them.
    obs_published_ = stats_;
    obs_published_depth_ = queued_;
    return;
  }
  auto& m = NetMetrics::get();
  const auto bump = [](obs::Counter& c, std::uint64_t now,
                       std::uint64_t& base) {
    if (now != base) {
      c.add(now - base);
      base = now;
    }
  };
  bump(m.sent, stats_.sent, obs_published_.sent);
  bump(m.delivered, stats_.delivered, obs_published_.delivered);
  bump(m.dropped, stats_.dropped, obs_published_.dropped);
  bump(m.duplicated, stats_.duplicated, obs_published_.duplicated);
  bump(m.blocked_at_send, stats_.blocked_at_send,
       obs_published_.blocked_at_send);
  bump(m.dropped_in_flight, stats_.dropped_in_flight,
       obs_published_.dropped_in_flight);
  bump(m.bytes_sent, stats_.bytes_sent, obs_published_.bytes_sent);
  bump(m.payloads_copied, stats_.payloads_copied,
       obs_published_.payloads_copied);
  if (queued_ != obs_published_depth_) {
    // add() rather than set(): concurrent nets aggregate their depths.
    m.in_flight.add(queued_ - obs_published_depth_);
    obs_published_depth_ = queued_;
  }
}

namespace {

void put_message(Bytes& out, const Message& m) {
  put_varint(out, m.from);
  put_varint(out, m.to);
  put_varint(out, m.type);
  put_blob(out, m.payload);
  put_varint(out, m.sent_tick);
  put_varint(out, m.deliver_tick);
}

bool get_message(StateReader& r, std::size_t n_endpoints, Message& m) {
  if (n_endpoints == 0) {  // a message with no endpoints cannot be valid
    r.fail();
    return false;
  }
  m.from = r.u64_max(n_endpoints - 1);
  m.to = r.u64_max(n_endpoints - 1);
  m.type = r.u32();
  r.blob(m.payload);
  m.sent_tick = r.u64();
  m.deliver_tick = r.u64();
  return r.ok();
}

}  // namespace

void SimNet::save_state(Bytes& out) const {
  std::uint64_t rng_state[4];
  rng_.export_state(rng_state);
  for (const std::uint64_t word : rng_state) put_varint(out, word);
  put_varint(out, now_);
  put_varint(out, inboxes_.size());
  for (const auto& inbox : inboxes_) {
    put_varint(out, inbox.size());
    for (const Message& m : inbox) put_message(out, m);
  }
  put_varint(out, in_flight_.size());
  for (const auto& [tick, msgs] : in_flight_) {
    put_varint(out, tick);
    put_varint(out, msgs.size());
    for (const Message& m : msgs) put_message(out, m);
  }
  put_varint(out, partitions_.size());
  for (const auto& [a, b] : partitions_) {
    put_varint(out, a);
    put_varint(out, b);
  }
  put_varint(out, isolated_.size());
  for (const Endpoint ep : isolated_) put_varint(out, ep);
  put_varint(out, stats_.sent);
  put_varint(out, stats_.delivered);
  put_varint(out, stats_.dropped);
  put_varint(out, stats_.duplicated);
  put_varint(out, stats_.blocked_at_send);
  put_varint(out, stats_.dropped_in_flight);
  put_varint(out, stats_.bytes_sent);
  put_varint(out, stats_.payloads_copied);
}

bool SimNet::load_state(StateReader& r) {
  std::uint64_t rng_state[4];
  for (std::uint64_t& word : rng_state) word = r.u64();
  rng_.import_state(rng_state);
  now_ = r.u64();
  const std::uint64_t n_endpoints = r.count();
  inboxes_.assign(n_endpoints, {});
  for (auto& inbox : inboxes_) {
    const std::uint64_t n = r.count(6);
    inbox.resize(n);
    for (Message& m : inbox) {
      if (!get_message(r, n_endpoints, m)) return false;
    }
  }
  in_flight_.clear();
  queued_ = 0;
  const std::uint64_t n_buckets = r.count(2);
  std::uint64_t prev_tick = 0;
  for (std::uint64_t i = 0; i < n_buckets && r.ok(); ++i) {
    const std::uint64_t tick = r.u64();
    if (i > 0 && tick <= prev_tick) r.fail();  // map keys strictly ascend
    prev_tick = tick;
    const std::uint64_t n = r.count(6);
    auto& bucket = in_flight_[tick];
    bucket.resize(n);
    for (Message& m : bucket) {
      if (!get_message(r, n_endpoints, m)) return false;
    }
    queued_ += static_cast<std::int64_t>(n);
  }
  partitions_.clear();
  const std::uint64_t n_partitions = r.count(2);
  for (std::uint64_t i = 0; i < n_partitions && r.ok(); ++i) {
    const Endpoint a = r.u64();
    const Endpoint b = r.u64();
    if (a >= b || !partitions_.emplace(a, b).second) r.fail();
  }
  isolated_.clear();
  const std::uint64_t n_isolated = r.count();
  for (std::uint64_t i = 0; i < n_isolated && r.ok(); ++i) {
    if (!isolated_.insert(r.u64()).second) r.fail();
  }
  stats_.sent = r.u64();
  stats_.delivered = r.u64();
  stats_.dropped = r.u64();
  stats_.duplicated = r.u64();
  stats_.blocked_at_send = r.u64();
  stats_.dropped_in_flight = r.u64();
  stats_.bytes_sent = r.u64();
  stats_.payloads_copied = r.u64();
  if (!r.ok()) return false;
  // The saving run already published these totals into the process-global
  // registry; baseline here so the restored deltas are not re-published.
  obs_published_ = stats_;
  obs_published_depth_ = queued_;
  return true;
}

std::vector<Message> SimNet::drain(Endpoint ep) {
  SB_CHECK(ep < inboxes_.size());
  // Move the inbox out wholesale — draining used to copy every payload.
  return std::exchange(inboxes_[ep], {});
}

void SimNet::set_partitioned(Endpoint a, Endpoint b, bool blocked_now) {
  const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  if (blocked_now) {
    partitions_.insert(key);
  } else {
    partitions_.erase(key);
  }
}

void SimNet::set_isolated(Endpoint ep, bool isolated) {
  if (isolated) {
    isolated_.insert(ep);
  } else {
    isolated_.erase(ep);
  }
}

}  // namespace softborg
