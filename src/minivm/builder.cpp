#include "minivm/builder.h"

#include "common/check.h"
#include "common/log.h"

namespace softborg {

ProgramBuilder::ProgramBuilder(std::string name, std::uint64_t id)
    : name_(std::move(name)), id_(id) {}

Reg ProgramBuilder::reg() {
  SB_CHECK(num_regs_ < 0xffff);
  return num_regs_++;
}

std::uint32_t ProgramBuilder::global() {
  SB_CHECK(num_globals_ < 0xffff);
  return num_globals_++;
}

std::uint32_t ProgramBuilder::lock() {
  SB_CHECK(num_locks_ < 0xffff);
  return num_locks_++;
}

std::uint32_t ProgramBuilder::input_slot() {
  SB_CHECK(num_inputs_ < 0xffff);
  return num_inputs_++;
}

ProgramBuilder::Label ProgramBuilder::label() {
  label_pc_.push_back(kUnbound);
  return static_cast<Label>(label_pc_.size() - 1);
}

void ProgramBuilder::bind(Label l) {
  SB_CHECK(l < label_pc_.size());
  SB_CHECK(label_pc_[l] == kUnbound);
  label_pc_[l] = current_pc();
}

ProgramBuilder::Label ProgramBuilder::here() {
  Label l = label();
  bind(l);
  return l;
}

void ProgramBuilder::emit(Instr ins) { code_.push_back(ins); }

void ProgramBuilder::const_(Reg r, Value v) {
  emit({.op = Op::kConst, .a = r, .imm = v});
}
void ProgramBuilder::mov(Reg dst, Reg src) {
  emit({.op = Op::kMov, .a = dst, .b = src});
}
void ProgramBuilder::add(Reg d, Reg a, Reg b) {
  emit({.op = Op::kAdd, .a = d, .b = a, .c = b});
}
void ProgramBuilder::sub(Reg d, Reg a, Reg b) {
  emit({.op = Op::kSub, .a = d, .b = a, .c = b});
}
void ProgramBuilder::mul(Reg d, Reg a, Reg b) {
  emit({.op = Op::kMul, .a = d, .b = a, .c = b});
}
void ProgramBuilder::div(Reg d, Reg a, Reg b) {
  emit({.op = Op::kDiv, .a = d, .b = a, .c = b});
}
void ProgramBuilder::mod(Reg d, Reg a, Reg b) {
  emit({.op = Op::kMod, .a = d, .b = a, .c = b});
}
void ProgramBuilder::cmp_lt(Reg d, Reg a, Reg b) {
  emit({.op = Op::kCmpLt, .a = d, .b = a, .c = b});
}
void ProgramBuilder::cmp_le(Reg d, Reg a, Reg b) {
  emit({.op = Op::kCmpLe, .a = d, .b = a, .c = b});
}
void ProgramBuilder::cmp_eq(Reg d, Reg a, Reg b) {
  emit({.op = Op::kCmpEq, .a = d, .b = a, .c = b});
}
void ProgramBuilder::cmp_ne(Reg d, Reg a, Reg b) {
  emit({.op = Op::kCmpNe, .a = d, .b = a, .c = b});
}

void ProgramBuilder::branch_if(Reg cond, Label then_l, Label else_l) {
  fixups_.push_back({current_pc(), 1, then_l});
  fixups_.push_back({current_pc(), 2, else_l});
  emit({.op = Op::kBranchIf, .a = cond});
}

void ProgramBuilder::jump(Label l) {
  fixups_.push_back({current_pc(), 0, l});
  emit({.op = Op::kJump});
}

void ProgramBuilder::input(Reg r, std::uint32_t slot) {
  emit({.op = Op::kInput, .a = r, .b = slot});
}
void ProgramBuilder::syscall(Reg r, std::uint16_t sys_id, Reg arg) {
  emit({.op = Op::kSyscall, .a = r, .b = sys_id, .c = arg});
}
void ProgramBuilder::loadg(Reg r, std::uint32_t g) {
  emit({.op = Op::kLoadG, .a = r, .b = g});
}
void ProgramBuilder::storeg(std::uint32_t g, Reg r) {
  emit({.op = Op::kStoreG, .a = g, .b = r});
}
void ProgramBuilder::lock_acq(std::uint32_t l) {
  emit({.op = Op::kLock, .a = l});
}
void ProgramBuilder::lock_rel(std::uint32_t l) {
  emit({.op = Op::kUnlock, .a = l});
}
void ProgramBuilder::assert_true(Reg r, std::int64_t msg_id) {
  emit({.op = Op::kAssert,
        .a = r,
        .b = static_cast<std::uint32_t>(msg_id & 0xffffffff)});
}
void ProgramBuilder::abort_now(std::int64_t code) {
  emit({.op = Op::kAbort,
        .a = static_cast<std::uint32_t>(code & 0xffffffff)});
}
void ProgramBuilder::output(Reg r) { emit({.op = Op::kOutput, .a = r}); }
void ProgramBuilder::yield() { emit({.op = Op::kYield}); }
void ProgramBuilder::halt() { emit({.op = Op::kHalt}); }

void ProgramBuilder::start_thread() { thread_entries_.push_back(current_pc()); }

Reg ProgramBuilder::scratch() {
  if (!have_scratch_) {
    scratch_ = reg();
    have_scratch_ = true;
  }
  return scratch_;
}

void ProgramBuilder::add_const(Reg d, Reg a, Value v) {
  Reg s = scratch();
  const_(s, v);
  add(d, a, s);
}
void ProgramBuilder::cmp_lt_const(Reg d, Reg a, Value v) {
  Reg s = scratch();
  const_(s, v);
  cmp_lt(d, a, s);
}
void ProgramBuilder::cmp_eq_const(Reg d, Reg a, Value v) {
  Reg s = scratch();
  const_(s, v);
  cmp_eq(d, a, s);
}

Program ProgramBuilder::build() {
  Program p;
  p.id = ProgramId(id_);
  p.name = name_;
  p.code = code_;
  p.thread_entries = thread_entries_;
  p.num_regs = num_regs_;
  p.num_globals = num_globals_;
  p.num_locks = num_locks_;
  p.num_inputs = num_inputs_;

  for (const auto& fix : fixups_) {
    SB_CHECK(fix.label < label_pc_.size());
    const std::uint32_t target = label_pc_[fix.label];
    SB_CHECK(target != kUnbound);
    Instr& ins = p.code[fix.pc];
    switch (fix.operand) {
      case 0:
        ins.a = target;
        break;
      case 1:
        ins.b = target;
        break;
      default:
        ins.c = target;
        break;
    }
  }

  std::uint32_t next_site = 0;
  for (auto& ins : p.code) {
    if (ins.op == Op::kBranchIf || ins.op == Op::kAssert ||
        ins.op == Op::kDiv || ins.op == Op::kMod) {
      ins.site = next_site++;
    }
  }
  p.num_branch_sites = next_site;

  std::string error;
  if (!p.validate(&error)) {
    SB_LOG_ERROR("program '%s' failed validation: %s", p.name.c_str(),
                 error.c_str());
    SB_CHECK(false);
  }
  return p;
}

}  // namespace softborg
