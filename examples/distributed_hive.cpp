// Distributed hive (paper §3: "the hive may be physically centralized …
// entirely distributed, or hybrid").
//
// Runs the corpus's by-products through a 3-shard hive behind the lossy
// network: an ingress routes each trace to the shard that owns its program,
// shards analyze independently (bugs, fixes), and finally one shard's
// accumulated knowledge (its collective execution trees) is serialized and
// migrated — the "hybrid" deployment where edge shards feed a center.
#include <cstdio>

#include "core/softborg.h"

int main() {
  using namespace softborg;

  auto corpus = standard_corpus();
  NetConfig net_config;
  net_config.drop_prob = 0.02;
  SimNet net(net_config);
  ShardedHive hive(&corpus, /*num_shards=*/3, net);

  std::printf("shard ownership:\n");
  for (const auto& entry : corpus) {
    std::printf("  %-22s -> shard %zu\n", entry.program.name.c_str(),
                hive.shard_index(entry.program.id));
  }

  // A fleet's worth of traffic through the ingress.
  const Endpoint fleet = net.add_endpoint();
  Rng rng(17);
  std::uint64_t trace_id = 1;
  for (int round = 0; round < 800; ++round) {
    const auto& entry = corpus[rng.next_below(corpus.size())];
    std::vector<Value> inputs;
    for (const auto& d : entry.domains) inputs.push_back(rng.next_in(d.lo, d.hi));
    ExecConfig cfg;
    cfg.inputs = inputs;
    cfg.seed = rng();
    auto result = execute(entry.program, cfg);
    result.trace.id = TraceId(trace_id++);
    net.send(fleet, hive.ingress(), kMsgTrace, encode_trace(result.trace));
    if (round % 20 == 0) {
      net.tick();
      hive.pump(net);
    }
  }
  for (int i = 0; i < 20; ++i) {
    net.tick();
    hive.pump(net);
  }

  const auto stats = hive.aggregate_stats();
  std::printf("\nacross %zu shards: ingested=%llu routed=%llu paths=%llu "
              "bugs=%zu\n",
              hive.num_shards(),
              static_cast<unsigned long long>(stats.traces_ingested),
              static_cast<unsigned long long>(hive.routed()),
              static_cast<unsigned long long>(stats.new_paths),
              hive.total_bugs());

  const auto fixes = hive.process_all();
  std::printf("fixes approved across shards: %zu\n", fixes.size());

  // Hybrid: migrate shard 0's knowledge to a center.
  const auto exported = hive.export_trees(0);
  std::size_t bytes = 0, paths = 0;
  for (const auto& [program, wire] : exported) {
    bytes += wire.size();
    if (auto tree = decode_tree(wire)) paths += tree->num_paths();
  }
  std::printf("shard 0 knowledge export: %zu program tree(s), %zu paths, "
              "%zu bytes on the wire\n",
              exported.size(), paths, bytes);
  return 0;
}
