// Human-readable disassembly of MiniVM programs (debugging, the repair
// lab's human-facing output, and golden tests).
#pragma once

#include <string>

#include "minivm/program.h"

namespace softborg {

// One instruction, e.g. "  12: brif  r3 ? ->14 : ->17   (site 2)".
std::string disassemble_instr(const Instr& ins, std::uint32_t pc);

// Whole program listing with thread-entry markers.
std::string disassemble(const Program& p);

}  // namespace softborg
