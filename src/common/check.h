// Lightweight runtime checks used across SoftBorg.
//
// SB_CHECK is always on (it guards invariants whose violation would make
// continuing meaningless); SB_DCHECK compiles away in NDEBUG builds and is
// reserved for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace softborg {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "SB_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace softborg

#define SB_CHECK(expr)                                          \
  do {                                                          \
    if (!(expr)) ::softborg::check_failed(#expr, __FILE__, __LINE__); \
  } while (0)

#ifdef NDEBUG
#define SB_DCHECK(expr) \
  do {                  \
  } while (0)
#else
#define SB_DCHECK(expr) SB_CHECK(expr)
#endif
