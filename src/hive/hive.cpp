#include "hive/hive.h"

#include <algorithm>

#include "common/check.h"
#include "common/log.h"
#include "minivm/replay.h"
#include "trace/codec.h"

namespace softborg {

Hive::Hive(const std::vector<CorpusEntry>* corpus, HiveConfig config)
    : corpus_(corpus),
      config_(config),
      fixer_(config.fixer),
      rng_(config.seed) {
  SB_CHECK(corpus_ != nullptr);
  if (config_.k_anonymity > 1) {
    gate_ = std::make_unique<KAnonymityGate>(config_.k_anonymity);
  }
}

const CorpusEntry* Hive::entry_of(ProgramId program) const {
  for (const auto& e : *corpus_) {
    if (e.program.id == program) return &e;
  }
  return nullptr;
}

ExecTree* Hive::tree(ProgramId program) {
  auto it = trees_.find(program.value);
  return it == trees_.end() ? nullptr : &it->second;
}

const SiteStats& Hive::site_stats(ProgramId program) {
  return sites_[program.value];
}

void Hive::ingest_bytes(const Bytes& wire) {
  auto trace = decode_trace(wire);
  if (!trace) {
    stats_.decode_failures++;
    return;
  }
  ingest(std::move(*trace));
}

void Hive::ingest(Trace t) {
  if (t.id.value != 0 && !seen_trace_ids_.insert(t.id.value).second) {
    stats_.duplicates_dropped++;  // network duplicate
    return;
  }
  stats_.traces_ingested++;

  if (gate_ != nullptr) {
    auto released = gate_->add(std::move(t));
    if (released.empty()) {
      stats_.gated_traces++;
      return;
    }
    for (auto& r : released) ingest_released(std::move(r));
    return;
  }
  ingest_released(std::move(t));
}

void Hive::ingest_released(Trace t) {
  const CorpusEntry* entry = entry_of(t.program);
  if (entry == nullptr) return;  // unknown program

  if (t.patched) stats_.fixed_traces_seen++;  // fix telemetry
  latest_day_seen_ = std::max(latest_day_seen_, t.day);

  // Bug tracking first: every failure counts, even unreplayable ones.
  if (t.outcome != Outcome::kOk) {
    Bug* bug = bugs_.record(t);
    // Fix-effectiveness monitoring: a failure matching an already-fixed
    // bug's signature — observed after the fix has had time to propagate —
    // means the distributed fix is not holding in the field. After a
    // couple of recurrences the bug is reopened so a new fix attempt (or
    // the repair lab) takes over.
    if (bug != nullptr && bug->fixed &&
        t.day > bug->fixed_day + config_.recurrence_grace_days) {
      stats_.fix_recurrences++;
      if (++recurrences_[bug->id.value] >= 3) {
        bug->fixed = false;
        fix_attempted_bugs_.erase(bug->id.value);
        recurrences_.erase(bug->id.value);
        stats_.bugs_reopened++;
        SB_LOG_WARN("hive: reopening bug %llu — fix not holding",
                    static_cast<unsigned long long>(bug->id.value));
      }
    }
    if (bug != nullptr && bug->occurrences == 1) {
      stats_.bugs_found++;
      // Assertion failures in multi-threaded programs are (conservatively)
      // schedule-dependent: the same input passes under other schedules.
      if (bug->kind == BugKind::kCrash &&
          bug->crash.has_value() &&
          bug->crash->kind == CrashKind::kAssertFailure &&
          entry->program.num_threads() > 1) {
        bugs_.mark_schedule_dependent(bug->id);
      }
      SB_LOG_INFO("hive: new bug: %s", bug->describe().c_str());
    }
    if (t.outcome == Outcome::kDeadlock) {
      locks_[t.program.value].add_trace(t);
    }
  }

  // Tree merge: natural executions only (fixed-up runs are not paths of P),
  // and only granularities whose bit-vectors replay deterministically.
  if (t.patched) {
    stats_.patched_traces_skipped++;
    return;
  }
  if (t.granularity != Granularity::kTaintedBranches &&
      t.granularity != Granularity::kFull) {
    return;
  }
  const auto rep = replay_trace(entry->program, t);
  if (!rep.ok) {
    stats_.replay_failures++;
    return;
  }
  std::vector<SymDecision> decisions;
  decisions.reserve(rep.decisions.size());
  for (const auto& d : rep.decisions) decisions.push_back({d.site, d.taken});

  auto [it, inserted] = trees_.try_emplace(t.program.value, t.program);
  const auto merge = it->second.add_path(decisions, t.outcome, t.crash);
  stats_.paths_merged++;
  if (merge.new_path) stats_.new_paths++;
}

void Hive::ingest_sampled(const SampledTrace& t) {
  sites_[t.program.value].add(t);
}

std::vector<FixCandidate> Hive::process() {
  std::vector<FixCandidate> approved;
  for (Bug* bug : bugs_.open_bugs()) {
    if (!fix_attempted_bugs_.insert(bug->id.value).second) continue;
    const CorpusEntry* entry = entry_of(bug->program);
    if (entry == nullptr) continue;

    auto candidates = fixer_.synthesize(*bug, *entry);
    if (candidates.empty()) continue;

    FixCandidate best = std::move(candidates.front());
    const bool auto_eligible = bug->kind == BugKind::kCrash ||
                               bug->kind == BugKind::kDeadlock;
    if (auto_eligible && best.score() >= config_.auto_fix_threshold) {
      const FixId id = std::visit([](const auto& f) { return f.id; },
                                  best.fix);
      bugs_.mark_fixed(bug->id, id);
      bug->fixed_day = latest_day_seen_;
      stats_.fixes_approved++;
      // Shipping instrumentation changes the deployed program: proofs
      // about the unpatched P no longer describe the fleet (§3.3).
      revoke_proofs(bug->program);
      SB_LOG_INFO("hive: approved fix %llu for bug %llu (score %.2f)",
                  static_cast<unsigned long long>(id.value),
                  static_cast<unsigned long long>(bug->id.value),
                  best.score());
      approved.push_back(std::move(best));
    } else {
      RepairLabEntry lab;
      lab.why_not_auto =
          !auto_eligible
              ? "schedule-dependent or hang: needs a real (human) fix"
              : "validation score below auto threshold";
      lab.candidate = std::move(best);
      repair_lab_.push_back(std::move(lab));
      stats_.repair_lab_entries++;
    }
  }
  return approved;
}

std::vector<GuidanceDirective> Hive::plan_guidance(std::size_t per_program) {
  std::vector<GuidanceDirective> out;
  for (const auto& entry : *corpus_) {
    if (entry.program.num_threads() == 1) {
      ExecTree* t = tree(entry.program.id);
      if (t == nullptr) continue;
      auto ds = planner_.plan_frontier(entry, *t, per_program);
      out.insert(out.end(), std::make_move_iterator(ds.begin()),
                 std::make_move_iterator(ds.end()));
    } else {
      auto ds = planner_.plan_schedules(entry, per_program, rng_);
      out.insert(out.end(), std::make_move_iterator(ds.begin()),
                 std::make_move_iterator(ds.end()));
    }
  }
  return out;
}

ProofCertificate Hive::attempt_proof(ProgramId program, Property property) {
  const CorpusEntry* entry = entry_of(program);
  SB_CHECK(entry != nullptr);
  auto [it, inserted] = trees_.try_emplace(program.value, program);
  ProofCertificate cert =
      prover_.attempt(*entry, it->second, property, config_.proof_budget);
  if (cert.publishable()) proofs_.push_back({cert, false});
  return cert;
}

void Hive::revoke_proofs(ProgramId program) {
  for (auto& published : proofs_) {
    if (!published.revoked && published.certificate.program == program) {
      published.revoked = true;
      stats_.proofs_revoked++;
      SB_LOG_INFO("hive: revoked proof %llu (%s) — a fix changed the "
                  "deployed program",
                  static_cast<unsigned long long>(
                      published.certificate.id.value),
                  property_name(published.certificate.property));
    }
  }
}

std::size_t Hive::valid_proof_count() const {
  std::size_t n = 0;
  for (const auto& published : proofs_) {
    if (!published.revoked) n++;
  }
  return n;
}

}  // namespace softborg
