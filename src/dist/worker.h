// Shard worker for the multi-process distributed hive (ISSUE 9 tentpole).
//
// One ShardWorker owns one Hive — the same per-shard layout as
// hive/sharded.h (disjoint fix/proof id blocks, per-shard seed), but living
// in its own OS process and fed over a Channel instead of a SimNet
// endpoint. The worker's loop:
//
//   poll → admit into a bounded ingress queue (admission control sheds the
//   lowest-priority traffic when full) → ingest_batch up to batch_max →
//   grant credit back to the router for every trace consumed (ingested OR
//   shed — credit tracks queue slots, not successful work, so flow control
//   never leaks).
//
// Durability rides on the PR-8 snapshot store: the worker snapshots its
// hive (state + trees + solver cache + worker ledger) on request
// (kMsgSnapshot), periodically (snapshot_every_batches), and at shutdown;
// a restarted worker warm-starts from the newest good generation and
// re-announces itself to the router with resumed=true.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "dist/bounded_queue.h"
#include "dist/channel.h"
#include "dist/control.h"
#include "hive/hive.h"
#include "minivm/corpus.h"

namespace softborg::dist {

struct WorkerConfig {
  HiveConfig hive;
  // Ingress queue bound (worker-side admission control).
  std::size_t queue_capacity = 1024;
  // Credit window announced to the router: the max unacknowledged traces in
  // flight toward this worker. Must fit the frame header's u16 grant field.
  std::uint32_t credit_window = 256;
  // Max traces per ingest_batch call — bounds per-round latency so credit
  // grants (and shutdown handling) stay responsive under load.
  std::size_t batch_max = 64;
  // Durable snapshot directory; empty disables durability.
  std::string snapshot_dir;
  // Write a snapshot every N batches (0 = only on request/shutdown).
  std::uint64_t snapshot_every_batches = 0;
  // Flight-recorder dump file; empty disables tracing + recording entirely.
  // When set, run_worker_loop enables both, installs the fatal-signal flush
  // at this path, re-flushes on every snapshot request, and flushes once
  // more at clean shutdown — so even a kill -9'd worker leaves its
  // last-snapshot-time ring behind.
  std::string trace_dump_path;
};

class ShardWorker {
 public:
  // `corpus` must outlive the worker. The shard's Hive gets the same
  // disjoint id blocks and per-shard seed ShardedHive would give shard
  // `index`, so a distributed fleet and an in-process one synthesize
  // identically-numbered artifacts.
  ShardWorker(std::size_t index, const std::vector<CorpusEntry>* corpus,
              WorkerConfig config);

  // Warm start from config.snapshot_dir (no-op without one). True when a
  // valid snapshot was loaded; false falls back to a cold start.
  bool try_resume();

  // Announces shard index + credit window to the router. Call once after
  // connecting (and again after any reconnect).
  void send_hello(Channel& ch);

  // One round of the worker loop. Returns false once the shutdown protocol
  // has completed (queue drained, closing stats + trees + ack sent).
  bool pump(Channel& ch);

  // True when the previous pump() round did any work (received, ingested,
  // or shed) — drivers sleep briefly on idle rounds instead of spinning.
  bool last_round_active() const { return active_; }

  WorkerStatsMsg closing_stats() const;
  Hive& hive() { return *hive_; }
  std::size_t index() const { return index_; }
  bool resumed() const { return resumed_; }
  std::uint64_t snapshots_written() const { return snapshots_written_; }

  // Writes a durable snapshot now. False on I/O failure or when durability
  // is disabled.
  bool write_snapshot();

 private:
  void admit(Bytes wire, obs::TraceContext ctx);
  void publish_metrics();

  // Rebuilds hive_ cold with the shard's id blocks and seed (construction
  // and the discard-on-corrupt-snapshot path share it).
  void build_hive();

  std::size_t index_;
  const std::vector<CorpusEntry>* corpus_;
  WorkerConfig config_;
  std::unique_ptr<Hive> hive_;
  BoundedTraceQueue queue_;
  bool shutdown_ = false;
  bool done_ = false;
  bool active_ = false;
  bool resumed_ = false;
  std::uint32_t pending_credit_ = 0;
  std::uint64_t ingested_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t snapshots_written_ = 0;
  std::uint64_t snapshot_seq_ = 0;
  // publish_metrics() delta baselines.
  std::uint64_t obs_ingested_ = 0;
  std::uint64_t obs_shed_ = 0;
  std::uint64_t obs_batches_ = 0;
};

// Dials `router_addr`, hellos, and pumps until shutdown. The worker-process
// main loop (CI's shard processes and spawn_worker_process children run
// exactly this). Returns a process exit code: 0 on clean shutdown, nonzero
// when the router was unreachable or the link died mid-run.
int run_worker_loop(std::size_t index, const std::vector<CorpusEntry>* corpus,
                    const WorkerConfig& config, const std::string& router_addr);

// Forks a child that runs run_worker_loop and exits. Returns the child pid
// (caller reaps), or -1 when fork fails. Fork the fleet BEFORE creating any
// thread pools in the parent (fork does not duplicate threads).
int spawn_worker_process(std::size_t index,
                         const std::vector<CorpusEntry>* corpus,
                         const WorkerConfig& config,
                         const std::string& router_addr);

}  // namespace softborg::dist
