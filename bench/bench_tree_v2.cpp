// BM_TreeMerge / BM_TreeQuery — arena-backed ExecTree v2 against the
// pre-refactor baseline on a fleet-shaped workload: 64 endpoints x 64 runs
// of one program, the same redundancy model as BM_ShardedPump. Each
// endpoint owns one installed configuration — a fixed 64-decision path —
// and every run re-walks it with one of a handful of scheduler-dependent
// tail variants, so the hive re-merges a small set of hot paths thousands
// of times and then interrogates the (~10k-node) tree with the planners'
// query mix (frontier, completeness, subtree stats, outcome census).
//
// The workload is decision-stream-shaped rather than replayed from corpus
// wires: the standard corpus programs have single-digit tainted branch
// depth, so their trees (tens of nodes) measure allocator noise, not tree
// mechanics. The stream model keeps the fleet's signature — deep hot
// prefixes, massive re-walk redundancy, a bounded variant fan-out.
//
// Arg(0) runs `LegacyTree`, a faithful replica of the seed implementation:
// array-of-structs nodes each owning three vectors plus an optional crash,
// with recursive frontier/complete/stats walks that materialize a prefix
// for every frontier before sorting and truncating. Arg(1) runs the arena
// tree: SoA pools, packed 16-byte edge cells, and incremental aggregates that
// make
// complete()/open_frontiers()/stats_at() reads and let frontier() prune to
// open subtrees, building prefixes only for the survivors. Methodology and
// measured numbers: EXPERIMENTS.md ("BM_TreeMerge / BM_TreeQuery").
#include <benchmark/benchmark.h>

#include "bench_json_gbench.h"

#include <optional>
#include <vector>

#include "core/softborg.h"

namespace softborg {
namespace {

// ---------------------------------------------------------------- legacy ---
// The seed-era tree, kept verbatim in miniature (merge + the four query
// entry points; persistence and debug rendering dropped). Costs replicated:
// per-node vector headers, prefix copies for every frontier hit, full
// recursive walks for complete() and stats_at().
class LegacyTree {
 public:
  explicit LegacyTree(ProgramId program) : program_(program) {
    nodes_.push_back(Node{});
  }

  void add_path(const std::vector<SymDecision>& decisions, Outcome outcome,
                const std::optional<CrashInfo>& crash = std::nullopt,
                std::uint64_t weight = 1) {
    if (weight == 0) return;
    std::uint32_t cur = 0;
    nodes_[0].visits += weight;
    std::size_t depth = 0;
    for (; depth < decisions.size(); ++depth) {
      const auto& d = decisions[depth];
      const std::uint32_t child = find_child(nodes_[cur], d.site, d.taken);
      if (child == 0) break;
      cur = child;
      nodes_[cur].visits += weight;
    }
    const std::size_t needed = nodes_.size() + (decisions.size() - depth);
    if (nodes_.capacity() < needed) {
      nodes_.reserve(std::max(needed, nodes_.capacity() * 2));
    }
    for (; depth < decisions.size(); ++depth) {
      const auto& d = decisions[depth];
      const std::uint32_t child = static_cast<std::uint32_t>(nodes_.size());
      nodes_.push_back(Node{});
      nodes_[cur].edges.push_back({d.site, d.taken, child});
      cur = child;
      nodes_[cur].visits += weight;
    }
    Node& leaf = nodes_[cur];
    bool outcome_seen = false;
    for (auto& [o, count] : leaf.outcomes) {
      if (o == outcome) {
        count += weight;
        outcome_seen = true;
      }
    }
    if (!outcome_seen) leaf.outcomes.push_back({outcome, weight});
    if (crash.has_value() && !leaf.crash.has_value()) leaf.crash = crash;
  }

  struct Frontier {
    std::vector<SymDecision> prefix;
    std::uint32_t site = 0;
    bool direction = false;
    std::uint64_t parent_visits = 0;
  };

  std::vector<Frontier> frontier(std::size_t max_items) const {
    std::vector<Frontier> out;
    std::vector<SymDecision> prefix;
    collect_frontiers(0, prefix, out);
    std::stable_sort(out.begin(), out.end(),
                     [](const Frontier& a, const Frontier& b) {
                       return a.parent_visits > b.parent_visits;
                     });
    if (out.size() > max_items) out.resize(max_items);
    return out;
  }

  bool complete() const {
    if (nodes_[0].visits == 0) return false;
    return complete_from(0);
  }

  struct SubtreeStats {
    std::uint64_t visits = 0;
    std::size_t leaves = 0;
    std::size_t nodes = 0;
    std::size_t open_frontiers = 0;
  };

  std::optional<SubtreeStats> stats_at(
      const std::vector<SymDecision>& prefix) const {
    std::uint32_t cur = 0;
    for (const auto& d : prefix) {
      const std::uint32_t child = find_child(nodes_[cur], d.site, d.taken);
      if (child == 0) return std::nullopt;
      cur = child;
    }
    SubtreeStats stats;
    stats.visits = nodes_[cur].visits;
    subtree_stats(cur, stats);
    return stats;
  }

  std::uint64_t paths_with_outcome(Outcome o) const {
    std::uint64_t total = 0;
    for (const auto& n : nodes_) {
      for (const auto& [outcome, count] : n.outcomes) {
        if (outcome == o) total++;
      }
    }
    return total;
  }

  std::size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Edge {
    std::uint32_t site = 0;
    bool dir = false;
    std::uint32_t child = 0;
  };
  struct Node {
    std::uint64_t visits = 0;
    std::vector<Edge> edges;
    std::vector<std::pair<std::uint32_t, bool>> infeasible;
    std::vector<std::pair<Outcome, std::uint64_t>> outcomes;
    std::optional<CrashInfo> crash;
  };

  std::uint32_t find_child(const Node& n, std::uint32_t site,
                           bool dir) const {
    for (const auto& e : n.edges) {
      if (e.site == site && e.dir == dir) return e.child;
    }
    return 0;
  }

  bool is_infeasible(const Node& n, std::uint32_t site, bool dir) const {
    for (const auto& [s, d] : n.infeasible) {
      if (s == site && d == dir) return true;
    }
    return false;
  }

  void collect_frontiers(std::uint32_t idx, std::vector<SymDecision>& prefix,
                         std::vector<Frontier>& out) const {
    const Node& n = nodes_[idx];
    for (const auto& e : n.edges) {
      if (find_child(n, e.site, !e.dir) == 0 &&
          !is_infeasible(n, e.site, !e.dir)) {
        out.push_back({prefix, e.site, !e.dir, n.visits});
      }
    }
    for (const auto& e : n.edges) {
      prefix.push_back({e.site, e.dir});
      collect_frontiers(e.child, prefix, out);
      prefix.pop_back();
    }
  }

  bool complete_from(std::uint32_t idx) const {
    const Node& n = nodes_[idx];
    for (const auto& e : n.edges) {
      if (find_child(n, e.site, !e.dir) == 0 &&
          !is_infeasible(n, e.site, !e.dir)) {
        return false;
      }
      if (!complete_from(e.child)) return false;
    }
    return true;
  }

  void subtree_stats(std::uint32_t idx, SubtreeStats& stats) const {
    const Node& n = nodes_[idx];
    stats.nodes++;
    if (!n.outcomes.empty()) stats.leaves++;
    for (const auto& e : n.edges) {
      if (find_child(n, e.site, !e.dir) == 0 &&
          !is_infeasible(n, e.site, !e.dir)) {
        stats.open_frontiers++;
      }
      subtree_stats(e.child, stats);
    }
  }

  ProgramId program_;
  std::vector<Node> nodes_;
};

// -------------------------------------------------------------- workload ---
constexpr std::size_t kEndpoints = 64;
constexpr std::size_t kRunsPerEndpoint = 64;
constexpr std::size_t kDepth = 64;          // decisions per execution
constexpr std::size_t kTail = 16;           // scheduler-dependent suffix
constexpr std::size_t kTailVariants = 8;    // interleavings seen in practice

struct Run {
  std::vector<SymDecision> decisions;
  Outcome outcome = Outcome::kOk;
  std::optional<CrashInfo> crash;
};

// 64 endpoints x 64 runs. Each endpoint's installed configuration fixes the
// first kDepth-kTail decisions; the last kTail are scheduler-dependent,
// drawn per run from the endpoint's kTailVariants precomputed
// interleavings. ~7/8 of all merges re-walk a path the tree already holds —
// the fleet redundancy the hive recycles. One tail variant per seventh
// endpoint crashes, so the outcome census has real hits to count.
const std::vector<Run>& fleet_runs() {
  static const std::vector<Run> runs = [] {
    Rng rng(29);
    std::vector<Run> out;
    out.reserve(kEndpoints * kRunsPerEndpoint);
    for (std::size_t endpoint = 0; endpoint < kEndpoints; ++endpoint) {
      std::vector<SymDecision> base(kDepth);
      for (std::size_t j = 0; j < kDepth; ++j) {
        base[j] = {static_cast<std::uint32_t>(j), rng.next_bool()};
      }
      std::vector<std::vector<SymDecision>> variants(kTailVariants, base);
      for (std::size_t v = 1; v < kTailVariants; ++v) {
        for (std::size_t j = kDepth - kTail; j < kDepth; ++j) {
          variants[v][j].taken = rng.next_bool();
        }
      }
      for (std::size_t run = 0; run < kRunsPerEndpoint; ++run) {
        Run r;
        const std::size_t v = rng.next_below(kTailVariants);
        r.decisions = variants[v];
        if (v == 1 && endpoint % 7 == 0) {
          r.outcome = Outcome::kCrash;
          r.crash = CrashInfo{CrashKind::kExplicitAbort, 9, 1};
        }
        out.push_back(std::move(r));
      }
    }
    return out;
  }();
  return runs;
}

// stats_at() probes, the portfolio allocator's access pattern: for a few
// endpoints, one shallow prefix (the shared hot region) and one deep
// prefix (that endpoint's own chain).
const std::vector<std::vector<SymDecision>>& probes() {
  static const std::vector<std::vector<SymDecision>> out = [] {
    std::vector<std::vector<SymDecision>> probes;
    for (std::size_t endpoint = 0; endpoint < kEndpoints; endpoint += 16) {
      const auto& path = fleet_runs()[endpoint * kRunsPerEndpoint].decisions;
      probes.emplace_back(path.begin(), path.begin() + 6);
      probes.emplace_back(path.begin(), path.begin() + kDepth - kTail);
    }
    return probes;
  }();
  return out;
}

template <typename TreeT>
TreeT build_tree() {
  TreeT tree(ProgramId(1));
  for (const auto& run : fleet_runs()) {
    tree.add_path(run.decisions, run.outcome, run.crash);
  }
  return tree;
}

// ------------------------------------------------------------ benchmarks ---
// Arg(0): legacy baseline. Arg(1): arena tree. Single-core by design — the
// win measured here is per-merge/per-query cost, not parallelism.

template <typename TreeT>
void merge_day(benchmark::State& state) {
  for (auto _ : state) {
    const TreeT tree = build_tree<TreeT>();
    benchmark::DoNotOptimize(tree.num_nodes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fleet_runs().size()));
}

void BM_TreeMerge(benchmark::State& state) {
  if (state.range(0) == 0) {
    merge_day<LegacyTree>(state);
  } else {
    merge_day<ExecTree>(state);
  }
}
BENCHMARK(BM_TreeMerge)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

template <typename TreeT>
void query_day(benchmark::State& state) {
  const TreeT tree = build_tree<TreeT>();
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += tree.frontier(64).size();
    sink += tree.complete() ? 1 : 0;
    sink += tree.paths_with_outcome(Outcome::kCrash);
    for (const auto& probe : probes()) {
      if (const auto stats = tree.stats_at(probe)) {
        sink += stats->open_frontiers + stats->leaves;
      }
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_TreeQuery(benchmark::State& state) {
  if (state.range(0) == 0) {
    query_day<LegacyTree>(state);
  } else {
    query_day<ExecTree>(state);
  }
}
BENCHMARK(BM_TreeQuery)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace softborg

int main(int argc, char** argv) {
  softborg::BenchJsonWriter json("tree_v2", argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  softborg::JsonTeeReporter reporter(json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return json.write() ? 0 : 1;
}
