// Length-prefixed framing for the distributed hive's socket links.
//
// A socket delivers a byte stream; the hive speaks discrete messages (the
// v2 trace wire, credit grants, control frames). Each frame is a fixed
// 16-byte header followed by the payload:
//
//   [0..3]   magic "SBD1"
//   [4]      format version (kFrameVersion)
//   [5]      message type (pod/protocol.h MsgType, must fit a byte)
//   [6..7]   credit grant, u16 LE — the credit-based flow-control window
//            travels in the header, so grants piggyback on any frame and a
//            bare grant is a header-only frame
//   [8..11]  payload length, u32 LE, at most kMaxFramePayload
//   [12..15] payload checksum, u32 LE (FNV-1a 64 folded to 32 bits)
//
// Version 2 (kFrameVersionTraced) inserts a fixed 10-byte trace-context
// extension between the header and the payload — u64 causal trace id LE +
// u16 hop path LE (obs/trace.h) — so the causal chain survives the process
// boundary. The length field still counts only the payload; the checksum
// covers extension || payload, so a flipped context bit poisons the frame
// exactly like a flipped payload bit. Encoders emit v2 only when a valid
// context is attached: with tracing disabled every frame is byte-identical
// to version 1, and v1-only decoders keep interoperating with untraced
// senders.
//
// FrameDecoder is incremental and hostile-input safe (the hive must survive
// corrupt or malicious peers): every header is fully validated before one
// byte of payload is buffered, so a flipped length bit can never drive an
// allocation beyond kMaxFramePayload; any malformed header or checksum
// mismatch latches the decoder into a failed state (the connection is
// poisoned — drop it, never resynchronize mid-stream). Truncation is not an
// error: a partial frame simply waits for more bytes. tests/dist_frame_test
// fuzzes all of this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/varint.h"
#include "obs/trace.h"

namespace softborg::dist {

inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::uint8_t kFrameVersionTraced = 2;
inline constexpr std::size_t kFrameHeaderSize = 16;
inline constexpr std::size_t kFrameTraceExtSize = 10;  // u64 id + u16 hops
// Generous for trace wires (typically well under a KiB) while still small
// enough that a hostile length field cannot balloon memory.
inline constexpr std::size_t kMaxFramePayload = 8u << 20;

struct Frame {
  std::uint32_t type = 0;
  std::uint32_t credit = 0;
  Bytes payload;
  obs::TraceContext ctx;  // invalid unless the frame arrived as v2
};

// The frame body checksum (FNV-1a 64 folded to 32): over the payload for
// v1, over extension || payload for v2. Exposed for tests that hand-craft
// frames.
std::uint32_t frame_checksum(const std::uint8_t* data, std::size_t n);

// Appends one encoded frame to `out`. The context-free overload and an
// invalid `ctx` emit identical version-1 bytes; a valid `ctx` emits
// version 2 with the trace extension.
void encode_frame(Bytes& out, std::uint32_t type, std::uint32_t credit,
                  const Bytes& payload);
void encode_frame(Bytes& out, std::uint32_t type, std::uint32_t credit,
                  const Bytes& payload, obs::TraceContext ctx);

class FrameDecoder {
 public:
  // Appends raw stream bytes. No-op once failed.
  void feed(const std::uint8_t* data, std::size_t n);

  // Pops the next complete frame, or nullopt (partial input or failed).
  std::optional<Frame> next();

  // True once the stream is unrecoverable (bad magic/version/length/type or
  // a payload checksum mismatch).
  bool failed() const { return failed_; }

  // Bytes currently buffered — bounded by kFrameHeaderSize + the validated
  // payload length of the frame in progress.
  std::size_t buffered() const { return buf_.size() - consumed_; }

 private:
  Bytes buf_;
  std::size_t consumed_ = 0;  // prefix already handed out as frames
  bool failed_ = false;
};

}  // namespace softborg::dist
