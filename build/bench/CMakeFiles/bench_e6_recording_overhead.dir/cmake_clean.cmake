file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_recording_overhead.dir/bench_e6_recording_overhead.cpp.o"
  "CMakeFiles/bench_e6_recording_overhead.dir/bench_e6_recording_overhead.cpp.o.d"
  "bench_e6_recording_overhead"
  "bench_e6_recording_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_recording_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
