file(REMOVE_RECURSE
  "CMakeFiles/sb_pod.dir/pod.cpp.o"
  "CMakeFiles/sb_pod.dir/pod.cpp.o.d"
  "CMakeFiles/sb_pod.dir/protocol.cpp.o"
  "CMakeFiles/sb_pod.dir/protocol.cpp.o.d"
  "libsb_pod.a"
  "libsb_pod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_pod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
