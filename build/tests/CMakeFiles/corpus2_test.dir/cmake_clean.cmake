file(REMOVE_RECURSE
  "CMakeFiles/corpus2_test.dir/corpus2_test.cpp.o"
  "CMakeFiles/corpus2_test.dir/corpus2_test.cpp.o.d"
  "corpus2_test"
  "corpus2_test.pdb"
  "corpus2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
