file(REMOVE_RECURSE
  "libsb_hive.a"
)
