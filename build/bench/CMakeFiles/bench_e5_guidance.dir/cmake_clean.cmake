file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_guidance.dir/bench_e5_guidance.cpp.o"
  "CMakeFiles/bench_e5_guidance.dir/bench_e5_guidance.cpp.o.d"
  "bench_e5_guidance"
  "bench_e5_guidance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_guidance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
