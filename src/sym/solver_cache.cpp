#include "sym/solver_cache.h"

#include <algorithm>
#include <bit>

#include "common/check.h"
#include "common/flat_hash.h"

namespace softborg {

const char* cache_lookup_name(CacheLookup l) {
  switch (l) {
    case CacheLookup::kMiss: return "miss";
    case CacheLookup::kExactHit: return "exact-hit";
    case CacheLookup::kUnsatSubsumed: return "unsat-subsumed";
    case CacheLookup::kModelReused: return "model-reused";
  }
  return "?";
}

namespace {

// Literal serialization tags. The encoding is pre-order with known arities,
// so concatenated literals stay self-delimiting.
constexpr std::uint8_t kTagConst = 0;
constexpr std::uint8_t kTagInput = 1;
constexpr std::uint8_t kTagUnknown = 2;
constexpr std::uint8_t kTagBin = 3;
constexpr std::uint8_t kTagBackref = 4;

}  // namespace

SolverCache::Hash128 SolverCache::hash128(const Bytes& buf) {
  std::uint64_t a = 0xcbf29ce484222325ULL;
  for (const std::uint8_t byte : buf) {
    a = (a ^ byte) * 0x100000001b3ULL;
  }
  std::uint64_t b = 0x9e3779b97f4a7c15ULL;
  for (const std::uint8_t byte : buf) {
    b = (b + byte) * 0xff51afd7ed558ccdULL;
    b ^= b >> 29;
  }
  return {mix64(a), mix64(b ^ (buf.size() * 0xd6e8feb86659fd93ULL))};
}

SolverCache::SolverCache(SolverCacheConfig config) : config_(config) {
  SB_CHECK(config_.max_entries >= 1);
  exact_.resize(64);  // grows on demand, power of two
}

void SolverCache::serialize_literal(const Literal& lit, bool canon,
                                    Bytes& out) {
  out.push_back(lit.expected ? 1 : 0);
  memo_.clear();
  stack_.clear();
  stack_.push_back(lit.cond.get());
  std::uint32_t next_ordinal = 0;
  while (!stack_.empty()) {
    const ExprNode* n = stack_.back();
    stack_.pop_back();
    const auto [it, fresh] = memo_.try_emplace(n, next_ordinal);
    if (!fresh) {
      // Shared subtree: emit a backref instead of re-walking. Keys are
      // therefore sensitive to the DAG's sharing pattern, which is fine:
      // expression construction is deterministic, so equal formulas built
      // by the same code share identically.
      out.push_back(kTagBackref);
      put_varint(out, it->second);
      continue;
    }
    next_ordinal++;
    switch (n->kind) {
      case ExprKind::kConst:
        out.push_back(kTagConst);
        put_varint_signed(out, n->cval);
        break;
      case ExprKind::kInput:
      case ExprKind::kUnknown: {
        const std::uint8_t kind = n->kind == ExprKind::kInput ? 0 : 1;
        out.push_back(kind == 0 ? kTagInput : kTagUnknown);
        if (canon) {
          const std::uint64_t vkey =
              (static_cast<std::uint64_t>(kind) << 32) | n->index;
          const auto cit = canon_map_.find(vkey);
          SB_CHECK(cit != canon_map_.end());
          put_varint(out, cit->second);
        } else {
          put_varint(out, n->index);
          var_emissions_.push_back({kind, n->index});
        }
        break;
      }
      case ExprKind::kBin:
        out.push_back(kTagBin);
        out.push_back(static_cast<std::uint8_t>(n->op));
        // lhs serializes first: pushed last, popped first.
        stack_.push_back(n->rhs.get());
        stack_.push_back(n->lhs.get());
        break;
    }
  }
}

void SolverCache::canonicalize(const PathConstraint& pc,
                               const std::vector<VarDomain>& input_domains,
                               const std::vector<VarDomain>& unknown_domains,
                               CanonicalQuery& q) {
  q.lits.clear();
  q.lit_mask = 0;
  q.vars.clear();
  q.input_raw.clear();
  q.unknown_raw.clear();

  // Pass 1: raw serialization per literal — hash plus the sequence of
  // variable occurrences (in emission order, for the renaming below).
  var_emissions_.clear();
  lit_var_ranges_.clear();
  struct LitRef {
    Hash128 h;
    std::uint32_t index;
  };
  std::vector<LitRef> order;
  order.reserve(pc.size());
  for (std::size_t i = 0; i < pc.size(); ++i) {
    buf_.clear();
    const std::size_t begin = var_emissions_.size();
    serialize_literal(pc[i], false, buf_);
    lit_var_ranges_.push_back({begin, var_emissions_.size()});
    order.push_back({hash128(buf_), static_cast<std::uint32_t>(i)});
  }

  // Clause normalization: sort by raw hash (order-independent) and drop
  // duplicate clauses (A ∧ A = A).
  std::sort(order.begin(), order.end(),
            [](const LitRef& x, const LitRef& y) { return x.h < y.h; });
  order.erase(std::unique(order.begin(), order.end(),
                          [](const LitRef& x, const LitRef& y) {
                            return x.h == y.h;
                          }),
              order.end());

  // Canonical renaming: first occurrence over the sorted clause order.
  // Heuristic, not a true canonical form — renamed twins whose clause
  // hashes sort differently get distinct keys (a missed hit, never a wrong
  // one): key equality implies the queries are renamings of each other
  // with identical per-variable domains.
  canon_map_.clear();
  for (const LitRef& lr : order) {
    const auto [begin, end] = lit_var_ranges_[lr.index];
    for (std::size_t k = begin; k < end; ++k) {
      const auto [kind, index] = var_emissions_[k];
      const std::uint64_t vkey =
          (static_cast<std::uint64_t>(kind) << 32) | index;
      const auto [it, fresh] = canon_map_.try_emplace(vkey, 0);
      if (!fresh) continue;
      if (kind == 0) {
        it->second = static_cast<std::uint32_t>(q.input_raw.size());
        q.input_raw.push_back(index);
      } else {
        it->second = static_cast<std::uint32_t>(q.unknown_raw.size());
        q.unknown_raw.push_back(index);
      }
    }
  }

  // Pass 2: canonical serialization of the whole query, domains appended —
  // the exact key covers formula shape AND the box it was decided over.
  auto query_domain = [&](std::uint8_t kind, std::uint32_t raw) {
    const std::vector<VarDomain>& doms =
        kind == 0 ? input_domains : unknown_domains;
    return raw < doms.size() ? doms[raw] : VarDomain{0, 0};
  };
  buf_.clear();
  put_varint(buf_, order.size());
  for (const LitRef& lr : order) serialize_literal(pc[lr.index], true, buf_);
  put_varint(buf_, q.input_raw.size());
  for (const std::uint32_t raw : q.input_raw) {
    const VarDomain d = query_domain(0, raw);
    put_varint_signed(buf_, d.lo);
    put_varint_signed(buf_, d.hi);
  }
  put_varint(buf_, q.unknown_raw.size());
  for (const std::uint32_t raw : q.unknown_raw) {
    const VarDomain d = query_domain(1, raw);
    put_varint_signed(buf_, d.lo);
    put_varint_signed(buf_, d.hi);
  }
  q.key = hash128(buf_);

  for (const LitRef& lr : order) {
    q.lits.push_back(lr.h);
    q.lit_mask |= 1ULL << (lr.h.a & 63);
  }
  for (const std::uint32_t raw : q.input_raw) {
    const VarDomain d = query_domain(0, raw);
    q.vars.push_back({0, raw, d.lo, d.hi});
  }
  for (const std::uint32_t raw : q.unknown_raw) {
    const VarDomain d = query_domain(1, raw);
    q.vars.push_back({1, raw, d.lo, d.hi});
  }
  std::sort(q.vars.begin(), q.vars.end());
}

const SolverCache::ExactSlot* SolverCache::find_exact(
    const Hash128& key) const {
  if (key.a == 0) return nullptr;
  const std::size_t mask = exact_.size() - 1;
  std::size_t slot = key.a & mask;
  while (exact_[slot].key != 0) {
    if (exact_[slot].key == key.a) {
      return exact_[slot].check == key.b ? &exact_[slot] : nullptr;
    }
    slot = (slot + 1) & mask;
  }
  return nullptr;
}

void SolverCache::insert_exact(const Hash128& key, SolveStatus status,
                               std::uint32_t model_index) {
  // Key part 0 doubles as the empty-slot sentinel; a genuine zero hash (one
  // in 2^64) is simply never cached.
  if (key.a == 0) return;
  if (exact_count_ >= config_.max_entries) {
    // Generational eviction: clear the table (and the canonical models it
    // references) wholesale. O(1) amortized, matches the ReplayCache.
    std::fill(exact_.begin(), exact_.end(), ExactSlot{});
    canon_models_.clear();
    exact_count_ = 0;
    stats_.resets++;
    if (model_index != kNoModel) return;  // the model was just cleared too
  }
  if ((exact_count_ + 1) * 2 > exact_.size()) {
    std::vector<ExactSlot> old = std::move(exact_);
    exact_.assign(old.size() * 2, ExactSlot{});
    const std::size_t mask = exact_.size() - 1;
    for (const ExactSlot& s : old) {
      if (s.key == 0) continue;
      std::size_t slot = s.key & mask;
      while (exact_[slot].key != 0) slot = (slot + 1) & mask;
      exact_[slot] = s;
    }
  }
  const std::size_t mask = exact_.size() - 1;
  std::size_t slot = key.a & mask;
  while (exact_[slot].key != 0) {
    if (exact_[slot].key == key.a) {
      // Same key part, possibly stale check: replace in place.
      exact_[slot] = {key.a, key.b, status, model_index};
      return;
    }
    slot = (slot + 1) & mask;
  }
  exact_[slot] = {key.a, key.b, status, model_index};
  exact_count_++;
}

bool SolverCache::rebuild_model(const CanonicalQuery& q, const CanonModel& cm,
                                const PathConstraint& pc,
                                const std::vector<VarDomain>& input_domains,
                                const std::vector<VarDomain>& unknown_domains,
                                Assignment& out) const {
  if (cm.inputs.size() != q.input_raw.size() ||
      cm.unknowns.size() != q.unknown_raw.size()) {
    return false;
  }
  // Start from the query box's low corner (what solve_path returns for
  // unconstrained variables), then graft the cached values in.
  std::size_t num_inputs = input_domains.size();
  std::size_t num_unknowns = unknown_domains.size();
  for (const VarBox& v : q.vars) {
    if (v.kind == 0) {
      num_inputs = std::max<std::size_t>(num_inputs, v.index + 1);
    } else {
      num_unknowns = std::max<std::size_t>(num_unknowns, v.index + 1);
    }
  }
  out.inputs.assign(num_inputs, 0);
  for (std::size_t i = 0; i < input_domains.size(); ++i) {
    out.inputs[i] = input_domains[i].lo;
  }
  out.unknowns.assign(num_unknowns, 0);
  for (std::size_t j = 0; j < unknown_domains.size(); ++j) {
    out.unknowns[j] = unknown_domains[j].lo;
  }
  auto in_domain = [](const std::vector<VarDomain>& doms, std::uint32_t raw,
                      Value v) {
    const VarDomain d = raw < doms.size() ? doms[raw] : VarDomain{0, 0};
    return v >= d.lo && v <= d.hi;
  };
  for (std::size_t cid = 0; cid < q.input_raw.size(); ++cid) {
    const std::uint32_t raw = q.input_raw[cid];
    if (!in_domain(input_domains, raw, cm.inputs[cid])) return false;
    out.inputs[raw] = cm.inputs[cid];
  }
  for (std::size_t cid = 0; cid < q.unknown_raw.size(); ++cid) {
    const std::uint32_t raw = q.unknown_raw[cid];
    if (!in_domain(unknown_domains, raw, cm.unknowns[cid])) return false;
    out.unknowns[raw] = cm.unknowns[cid];
  }
  // Exact verification makes SAT hits sound even under key collision.
  return satisfies(pc, out);
}

bool SolverCache::subsumed_unsat(const CanonicalQuery& q) const {
  auto var_lt = [](const VarBox& x, const VarBox& y) {
    return x.kind != y.kind ? x.kind < y.kind : x.index < y.index;
  };
  for (const UnsatCore& core : unsat_cores_) {
    if (core.lits.size() > q.lits.size()) continue;
    // One-word prefilter: every core clause's signature bit must be set.
    if ((core.lit_mask & ~q.lit_mask) != 0) continue;
    if (!std::includes(q.lits.begin(), q.lits.end(), core.lits.begin(),
                       core.lits.end())) {
      continue;
    }
    // Domain containment: the cached proof refuted the core's clauses over
    // the core's box; it transfers only if the query's box is inside it for
    // every variable the core references. Clause identity is raw (variable
    // names matter) — renaming is unsound for subset reasoning.
    bool contained = true;
    auto qi = q.vars.begin();
    for (const VarBox& cv : core.vars) {
      while (qi != q.vars.end() && var_lt(*qi, cv)) ++qi;
      if (qi == q.vars.end() || qi->kind != cv.kind ||
          qi->index != cv.index || qi->lo < cv.lo || qi->hi > cv.hi) {
        contained = false;
        break;
      }
    }
    if (contained) return true;
  }
  return false;
}

bool SolverCache::reuse_model(const CanonicalQuery& q,
                              const PathConstraint& pc,
                              const std::vector<VarDomain>& input_domains,
                              const std::vector<VarDomain>& unknown_domains,
                              Assignment& out) const {
  const std::size_t probes =
      std::min(config_.model_probe_limit, models_.size());
  for (std::size_t p = 0; p < probes; ++p) {
    const Assignment& cand = models_[models_.size() - 1 - p];  // newest first
    CanonModel cm;
    cm.inputs.reserve(q.input_raw.size());
    for (const std::uint32_t raw : q.input_raw) {
      cm.inputs.push_back(raw < cand.inputs.size() ? cand.inputs[raw] : 0);
    }
    cm.unknowns.reserve(q.unknown_raw.size());
    for (const std::uint32_t raw : q.unknown_raw) {
      cm.unknowns.push_back(raw < cand.unknowns.size() ? cand.unknowns[raw]
                                                       : 0);
    }
    if (rebuild_model(q, cm, pc, input_domains, unknown_domains, out)) {
      return true;
    }
  }
  return false;
}

std::uint32_t SolverCache::store_canon_model(const CanonicalQuery& q,
                                             const Assignment& model) {
  CanonModel cm;
  cm.inputs.reserve(q.input_raw.size());
  for (const std::uint32_t raw : q.input_raw) {
    cm.inputs.push_back(raw < model.inputs.size() ? model.inputs[raw] : 0);
  }
  cm.unknowns.reserve(q.unknown_raw.size());
  for (const std::uint32_t raw : q.unknown_raw) {
    cm.unknowns.push_back(raw < model.unknowns.size() ? model.unknowns[raw]
                                                      : 0);
  }
  canon_models_.push_back(std::move(cm));
  return static_cast<std::uint32_t>(canon_models_.size() - 1);
}

void SolverCache::insert_result(const CanonicalQuery& q,
                                const SolveResult& r) {
  stats_.insertions++;
  std::uint32_t model_index = kNoModel;
  if (r.status == SolveStatus::kSat) model_index = store_canon_model(q, r.model);
  insert_exact(q.key, r.status, model_index);
  if (r.status == SolveStatus::kUnsat) {
    if (unsat_cores_.size() >= config_.max_unsat_cores) {
      unsat_cores_.erase(unsat_cores_.begin());
    }
    unsat_cores_.push_back({q.lits, q.lit_mask, q.vars});
  } else if (r.status == SolveStatus::kSat) {
    if (models_.size() >= config_.max_models) models_.erase(models_.begin());
    models_.push_back(r.model);
  }
}

SolveResult SolverCache::solve(const PathConstraint& pc,
                               const std::vector<VarDomain>& input_domains,
                               const std::vector<VarDomain>& unknown_domains,
                               const SolverOptions& options,
                               CacheLookup* outcome) {
  auto report = [&](CacheLookup l) {
    if (outcome != nullptr) *outcome = l;
  };
  // An empty domain (lo > hi) breaks the box-containment reasoning; such
  // queries bypass the cache entirely.
  for (const VarDomain& d : input_domains) {
    if (d.lo > d.hi) {
      report(CacheLookup::kMiss);
      return solve_path(pc, input_domains, unknown_domains, options);
    }
  }
  for (const VarDomain& d : unknown_domains) {
    if (d.lo > d.hi) {
      report(CacheLookup::kMiss);
      return solve_path(pc, input_domains, unknown_domains, options);
    }
  }

  stats_.lookups++;
  canonicalize(pc, input_domains, unknown_domains, query_);

  // 1. Exact canonical hit.
  if (const ExactSlot* slot = find_exact(query_.key)) {
    if (slot->status == SolveStatus::kUnsat) {
      stats_.exact_hits++;
      report(CacheLookup::kExactHit);
      SolveResult r;
      r.status = SolveStatus::kUnsat;
      return r;
    }
    if (slot->status == SolveStatus::kSat && slot->model != kNoModel &&
        slot->model < canon_models_.size()) {
      SolveResult r;
      if (rebuild_model(query_, canon_models_[slot->model], pc, input_domains,
                        unknown_domains, r.model)) {
        stats_.exact_hits++;
        report(CacheLookup::kExactHit);
        r.status = SolveStatus::kSat;
        return r;
      }
    }
    // Collision or unverifiable witness: fall through as a miss (the fresh
    // result below replaces the slot).
  }

  // 2. Cached UNSAT subset over a containing box proves UNSAT.
  if (subsumed_unsat(query_)) {
    stats_.unsat_subsumed++;
    stats_.insertions++;
    insert_exact(query_.key, SolveStatus::kUnsat, kNoModel);  // promote
    report(CacheLookup::kUnsatSubsumed);
    SolveResult r;
    r.status = SolveStatus::kUnsat;
    return r;
  }

  // 3. A cached assignment that satisfies the query proves SAT.
  {
    SolveResult r;
    if (reuse_model(query_, pc, input_domains, unknown_domains, r.model)) {
      stats_.models_reused++;
      stats_.insertions++;
      insert_exact(query_.key, SolveStatus::kSat,
                   store_canon_model(query_, r.model));  // promote
      report(CacheLookup::kModelReused);
      r.status = SolveStatus::kSat;
      return r;
    }
  }

  // 4. Fresh solve; decided results become facts worth recycling, budget
  // exhaustion does not.
  const SolveResult r =
      solve_path(pc, input_domains, unknown_domains, options);
  report(CacheLookup::kMiss);
  if (r.status != SolveStatus::kUnknown) insert_result(query_, r);
  return r;
}

void SolverCache::merge_from(const SolverCache& other) {
  // Exact entries in `other`'s slot order: stable and deterministic, so a
  // corpus-ordered sequence of merges always produces the same cache.
  for (const ExactSlot& slot : other.exact_) {
    if (slot.key == 0) continue;
    if (find_exact({slot.key, slot.check}) != nullptr) continue;
    std::uint32_t model_index = kNoModel;
    if (slot.status == SolveStatus::kSat && slot.model != kNoModel &&
        slot.model < other.canon_models_.size()) {
      canon_models_.push_back(other.canon_models_[slot.model]);
      model_index = static_cast<std::uint32_t>(canon_models_.size() - 1);
    }
    insert_exact({slot.key, slot.check}, slot.status, model_index);
  }
  for (const UnsatCore& core : other.unsat_cores_) {
    if (std::find(unsat_cores_.begin(), unsat_cores_.end(), core) !=
        unsat_cores_.end()) {
      continue;
    }
    if (unsat_cores_.size() >= config_.max_unsat_cores) {
      unsat_cores_.erase(unsat_cores_.begin());
    }
    unsat_cores_.push_back(core);
  }
  for (const Assignment& m : other.models_) {
    if (std::find(models_.begin(), models_.end(), m) != models_.end()) {
      continue;
    }
    if (models_.size() >= config_.max_models) models_.erase(models_.begin());
    models_.push_back(m);
  }
}

namespace {

void put_values(Bytes& out, const std::vector<Value>& vs) {
  put_varint(out, vs.size());
  for (const Value v : vs) put_varint_signed(out, v);
}

bool get_values(StateReader& r, std::vector<Value>& vs) {
  const std::uint64_t n = r.count();
  vs.clear();
  vs.reserve(n);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) vs.push_back(r.i64());
  return r.ok();
}

}  // namespace

void SolverCache::save_state(Bytes& out) const {
  put_varint(out, config_.max_entries);
  put_varint(out, config_.max_unsat_cores);
  put_varint(out, config_.max_models);
  put_varint(out, config_.model_probe_limit);
  put_varint(out, stats_.lookups);
  put_varint(out, stats_.exact_hits);
  put_varint(out, stats_.unsat_subsumed);
  put_varint(out, stats_.models_reused);
  put_varint(out, stats_.insertions);
  put_varint(out, stats_.resets);
  // Slot-for-slot dump of the occupied exact entries: reinserting by hash
  // would not reproduce wraparound probe sequences, so indices are explicit.
  put_varint(out, exact_.size());
  put_varint(out, exact_count_);
  for (std::size_t i = 0; i < exact_.size(); ++i) {
    const ExactSlot& slot = exact_[i];
    if (slot.key == 0) continue;
    put_varint(out, i);
    put_varint(out, slot.key);
    put_varint(out, slot.check);
    put_varint(out, static_cast<std::uint64_t>(slot.status));
    put_varint(out, slot.model);
  }
  put_varint(out, canon_models_.size());
  for (const CanonModel& cm : canon_models_) {
    put_values(out, cm.inputs);
    put_values(out, cm.unknowns);
  }
  put_varint(out, unsat_cores_.size());
  for (const UnsatCore& core : unsat_cores_) {
    put_varint(out, core.lits.size());
    for (const Hash128& h : core.lits) {
      put_varint(out, h.a);
      put_varint(out, h.b);
    }
    put_varint(out, core.vars.size());
    for (const VarBox& v : core.vars) {
      put_varint(out, v.kind);
      put_varint(out, v.index);
      put_varint_signed(out, v.lo);
      put_varint_signed(out, v.hi);
    }
  }
  put_varint(out, models_.size());
  for (const Assignment& m : models_) {
    put_values(out, m.inputs);
    put_values(out, m.unknowns);
  }
}

bool SolverCache::load_state(StateReader& r) {
  SolverCacheConfig cfg;
  cfg.max_entries = r.u64();
  cfg.max_unsat_cores = r.u64();
  cfg.max_models = r.u64();
  cfg.model_probe_limit = r.u64();
  if (!r.ok() || cfg.max_entries != config_.max_entries ||
      cfg.max_unsat_cores != config_.max_unsat_cores ||
      cfg.max_models != config_.max_models ||
      cfg.model_probe_limit != config_.model_probe_limit) {
    r.fail();  // differently-configured cache: eviction semantics diverge
    return false;
  }
  stats_.lookups = r.u64();
  stats_.exact_hits = r.u64();
  stats_.unsat_subsumed = r.u64();
  stats_.models_reused = r.u64();
  stats_.insertions = r.u64();
  stats_.resets = r.u64();

  const std::uint64_t table_size = r.u64();
  const std::uint64_t stored_count = r.u64();
  if (!r.ok() || table_size < 64 ||            // ctor floor, growth doubles
      (table_size & (table_size - 1)) != 0 ||  // power of two
      stored_count * 2 > table_size ||         // <= 50% load invariant
      stored_count > r.remaining() / 4) {
    r.fail();
    return false;
  }
  exact_.assign(table_size, ExactSlot{});
  exact_count_ = static_cast<std::size_t>(stored_count);

  // canon_models_ is decoded after the slots that reference it, so model
  // indices are range-checked in a second pass below.
  std::uint64_t max_model_ref = 0;
  std::uint64_t prev_index = 0;
  for (std::uint64_t i = 0; i < stored_count && r.ok(); ++i) {
    const std::uint64_t index = r.u64_max(table_size - 1);
    if (i > 0 && index <= prev_index) r.fail();  // strictly ascending
    prev_index = index;
    ExactSlot slot;
    slot.key = r.u64();
    slot.check = r.u64();
    // kUnknown (2) is never cached; only decided results are legal.
    slot.status = static_cast<SolveStatus>(r.u64_max(1));
    slot.model = r.u32();
    if (!r.ok() || slot.key == 0) {
      r.fail();
      return false;
    }
    if (slot.status == SolveStatus::kUnsat && slot.model != kNoModel) {
      r.fail();  // UNSAT entries carry no witness
      return false;
    }
    if (slot.model != kNoModel && slot.model + 1 > max_model_ref) {
      max_model_ref = slot.model + std::uint64_t{1};
    }
    exact_[index] = slot;
  }

  const std::uint64_t n_canon = r.count(2);
  if (r.ok() && max_model_ref > n_canon) {
    r.fail();  // a slot references a model that does not exist
    return false;
  }
  canon_models_.clear();
  canon_models_.reserve(n_canon);
  for (std::uint64_t i = 0; i < n_canon && r.ok(); ++i) {
    CanonModel cm;
    get_values(r, cm.inputs);
    get_values(r, cm.unknowns);
    canon_models_.push_back(std::move(cm));
  }

  unsat_cores_.clear();
  const std::uint64_t n_cores = r.count(2);
  if (n_cores > config_.max_unsat_cores) {
    r.fail();
    return false;
  }
  for (std::uint64_t i = 0; i < n_cores && r.ok(); ++i) {
    UnsatCore core;
    const std::uint64_t n_lits = r.count(2);
    core.lits.reserve(n_lits);
    Hash128 prev{};
    for (std::uint64_t l = 0; l < n_lits && r.ok(); ++l) {
      Hash128 h;
      h.a = r.u64();
      h.b = r.u64();
      if (l > 0 && h <= prev) r.fail();  // lits are sorted and deduped
      prev = h;
      // lit_mask is derived state; recompute rather than trust the wire.
      core.lit_mask |= 1ULL << (h.a & 63);
      core.lits.push_back(h);
    }
    const std::uint64_t n_vars = r.count(4);
    core.vars.reserve(n_vars);
    VarBox prev_var{};
    for (std::uint64_t v = 0; v < n_vars && r.ok(); ++v) {
      VarBox box;
      box.kind = static_cast<std::uint8_t>(r.u64_max(1));
      box.index = r.u32();
      box.lo = r.i64();
      box.hi = r.i64();
      if (v > 0 && box <= prev_var) r.fail();  // sorted by (kind, index)
      if (box.lo > box.hi) r.fail();
      prev_var = box;
      core.vars.push_back(box);
    }
    unsat_cores_.push_back(std::move(core));
  }

  models_.clear();
  const std::uint64_t n_models = r.count(2);
  if (n_models > config_.max_models) {
    r.fail();
    return false;
  }
  for (std::uint64_t i = 0; i < n_models && r.ok(); ++i) {
    Assignment m;
    get_values(r, m.inputs);
    get_values(r, m.unknowns);
    models_.push_back(std::move(m));
  }
  return r.ok();
}

bool SolverCache::state_equals(const SolverCache& other) const {
  return config_.max_entries == other.config_.max_entries &&
         config_.max_unsat_cores == other.config_.max_unsat_cores &&
         config_.max_models == other.config_.max_models &&
         config_.model_probe_limit == other.config_.model_probe_limit &&
         stats_.lookups == other.stats_.lookups &&
         stats_.exact_hits == other.stats_.exact_hits &&
         stats_.unsat_subsumed == other.stats_.unsat_subsumed &&
         stats_.models_reused == other.stats_.models_reused &&
         stats_.insertions == other.stats_.insertions &&
         stats_.resets == other.stats_.resets &&
         exact_count_ == other.exact_count_ && exact_ == other.exact_ &&
         canon_models_ == other.canon_models_ &&
         unsat_cores_ == other.unsat_cores_ && models_ == other.models_;
}

}  // namespace softborg
