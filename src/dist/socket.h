// Real socket transport for the distributed hive (ISSUE 9 tentpole).
//
// SocketChannel carries length-prefixed frames (dist/frame.h) over a
// nonblocking stream socket — TCP for cross-host fleets, Unix-domain for
// same-host shard processes (the CI topology). Addresses are strings:
//
//   unix:/tmp/softborg-hive.sock
//   tcp:127.0.0.1:7400         (listen: tcp:0 picks an ephemeral port)
//
// Everything is poll-driven and non-blocking after connection setup: send()
// buffers and opportunistically flushes; poll() flushes, reads whatever the
// kernel has, and decodes complete frames. Any socket error, EOF, or frame
// corruption kills the channel (alive() → false) — the router treats a dead
// shard channel as permanent shed-territory until the worker redials.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "dist/channel.h"
#include "dist/frame.h"

namespace softborg::dist {

class SocketChannel final : public Channel {
 public:
  // Takes ownership of a connected stream socket fd (made nonblocking).
  explicit SocketChannel(int fd);
  ~SocketChannel() override;

  SocketChannel(const SocketChannel&) = delete;
  SocketChannel& operator=(const SocketChannel&) = delete;

  void send(std::uint32_t type, Bytes payload, std::uint32_t credit = 0,
            obs::TraceContext ctx = {}) override;
  std::vector<Delivery> poll() override;
  bool alive() const override { return fd_ >= 0; }
  void flush() override;

  int fd() const { return fd_; }

 private:
  void kill();

  int fd_ = -1;
  FrameDecoder decoder_;
  Bytes wbuf_;            // pending output
  std::size_t woff_ = 0;  // prefix of wbuf_ already written
};

class Listener {
 public:
  // Binds + listens on `addr` (see header comment). Aborts on setup failure
  // — a hive that cannot open its ingress port has nothing to recover to.
  explicit Listener(const std::string& addr);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Non-blocking accept; nullptr when nobody is waiting.
  std::unique_ptr<SocketChannel> accept();

  // The bound address, with any ephemeral port resolved (what peers dial).
  const std::string& bound_addr() const { return bound_addr_; }

 private:
  int fd_ = -1;
  std::string bound_addr_;
  std::string unix_path_;  // unlinked on close
};

// Connects to `addr`, retrying until `timeout_ms` elapses (a worker often
// races the router's bind). nullptr on timeout.
std::unique_ptr<SocketChannel> dial(const std::string& addr,
                                    int timeout_ms = 5000);

}  // namespace softborg::dist
