file(REMOVE_RECURSE
  "libsb_tree.a"
)
