file(REMOVE_RECURSE
  "libsb_pod.a"
)
