// Random well-formed MiniVM programs, for property-based testing.
//
// Generated programs are single-threaded, always valid (builder-checked),
// and always terminate: control flow is forward-only branches plus
// constant-bounded loops. They may crash (random divisions and asserts) —
// intentionally, so the whole pipeline (interpreter, replay, symbolic
// executor, fixer, proof engine) gets exercised on arbitrary shapes, not
// just the hand-written corpus.
#pragma once

#include <cstdint>

#include "minivm/corpus.h"

namespace softborg {

struct RandomProgramOptions {
  unsigned num_inputs = 2;       // each with domain [0, 63]
  unsigned max_depth = 3;        // nesting of if/else and loops
  unsigned block_min = 2;        // statements per block
  unsigned block_max = 6;
  double p_branch = 0.30;        // P(statement is an if/else)
  double p_loop = 0.15;          // P(statement is a bounded loop)
  double p_div = 0.08;           // P(statement is a division) — may crash
  double p_assert = 0.06;        // P(statement is an assert) — may crash
  double p_syscall = 0.10;       // P(statement reads the environment)
};

// Deterministic in (seed, options). The entry's domains are filled in.
CorpusEntry make_random_program(std::uint64_t seed,
                                const RandomProgramOptions& options = {});

}  // namespace softborg
