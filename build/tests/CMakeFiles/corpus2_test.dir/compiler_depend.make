# Empty compiler generated dependencies file for corpus2_test.
# This may be replaced when dependencies are built.
