#include <gtest/gtest.h>

#include "minivm/corpus.h"
#include "pod/pod.h"
#include "pod/protocol.h"

namespace softborg {
namespace {

// -------------------------------------------------------------- protocol ---

TEST(Protocol, GuardPatchRoundTrip) {
  GuardPatch p;
  p.id = FixId(7);
  p.program = ProgramId(1);
  p.site = 3;
  p.crash_direction = false;
  p.when = {{0, 13, 13}, {1, 200, 255}};
  auto back = decode_guard_patch(encode_guard_patch(p));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, p);
}

TEST(Protocol, CrashGuardRoundTrip) {
  CrashGuardFix f;
  f.id = FixId(9);
  f.program = ProgramId(3);
  f.pc = 14;
  f.action = CrashGuardFix::Action::kSubstitute;
  f.fallback = -1;
  auto back = decode_crash_guard(encode_crash_guard(f));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, f);
}

TEST(Protocol, LockFixRoundTrip) {
  LockAvoidanceFix f;
  f.id = FixId(2);
  f.program = ProgramId(2);
  f.cycle_locks = {0, 1, 5};
  auto back = decode_lock_fix(encode_lock_fix(f));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, f);
}

TEST(Protocol, GuidanceRoundTripAllFields) {
  GuidanceDirective g;
  g.program = ProgramId(3);
  g.input_seed = std::vector<Value>{10, -5, 4242};
  SchedulePlan plan;
  plan.runs = {{0, 5}, {1, 7}};
  g.schedule = plan;
  FaultPlan faults;
  faults.forced[0] = 0;
  faults.forced[3] = -1;
  g.faults = faults;
  auto back = decode_guidance(encode_guidance(g));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, g);
}

TEST(Protocol, GuidanceRoundTripEmpty) {
  GuidanceDirective g;
  g.program = ProgramId(1);
  auto back = decode_guidance(encode_guidance(g));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, g);
}

TEST(Protocol, DecodersRejectTruncation) {
  GuardPatch p;
  p.when = {{0, 1, 2}};
  Bytes wire = encode_guard_patch(p);
  wire.pop_back();
  EXPECT_FALSE(decode_guard_patch(wire).has_value());

  Bytes garbage = {0xff, 0xff, 0xff};
  EXPECT_FALSE(decode_crash_guard(garbage).has_value());
  EXPECT_FALSE(decode_lock_fix(garbage).has_value());
  EXPECT_FALSE(decode_guidance(garbage).has_value());
}

TEST(Protocol, DecodersRejectTrailingGarbage) {
  LockAvoidanceFix f;
  f.cycle_locks = {1};
  Bytes wire = encode_lock_fix(f);
  wire.push_back(0);
  EXPECT_FALSE(decode_lock_fix(wire).has_value());
}

// ------------------------------------------------------------------ pod ----

Pod make_pod(const CorpusEntry& entry, std::uint64_t seed = 1,
             PodConfig config = {}) {
  return Pod(PodId(42), entry, UserProfile{}, config, seed);
}

TEST(Pod, RunProducesTraceWithIdentity) {
  const auto entry = make_media_parser();
  Pod pod = make_pod(entry);
  const auto run = pod.run_once(/*day=*/3);
  EXPECT_EQ(run.trace.pod.value, 42u);
  EXPECT_EQ(run.trace.program, entry.program.id);
  EXPECT_EQ(run.trace.day, 3u);
  EXPECT_NE(run.trace.id.value, 0u);
}

TEST(Pod, TraceIdsAreUnique) {
  const auto entry = make_media_parser();
  Pod pod = make_pod(entry);
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 50; ++i) ids.insert(pod.run_once(1).trace.id.value);
  EXPECT_EQ(ids.size(), 50u);
}

TEST(Pod, InputsRespectUserPreferences) {
  const auto entry = make_media_parser();
  UserProfile profile;
  profile.input_prefs = {{13, 13}, {200, 255}};  // exactly the crash region
  Pod pod(PodId(1), entry, profile, {}, 99);
  int crashes = 0;
  for (int i = 0; i < 20; ++i) {
    if (pod.run_once(1).trace.outcome == Outcome::kCrash) crashes++;
  }
  EXPECT_EQ(crashes, 20);  // every run draws from the crash region
}

TEST(Pod, InstallIsIdempotentByFixId) {
  const auto entry = make_media_parser();
  Pod pod = make_pod(entry);
  GuardPatch patch;
  patch.id = FixId(5);
  patch.program = entry.program.id;
  EXPECT_TRUE(pod.install(patch));
  EXPECT_FALSE(pod.install(patch));
  EXPECT_EQ(pod.fixes().guards.size(), 1u);
}

TEST(Pod, InstallRejectsWrongProgram) {
  const auto entry = make_media_parser();
  Pod pod = make_pod(entry);
  GuardPatch patch;
  patch.id = FixId(5);
  patch.program = ProgramId(999);
  EXPECT_FALSE(pod.install(patch));
}

TEST(Pod, InstalledGuardAvertsCrashes) {
  const auto entry = make_media_parser();
  UserProfile profile;
  profile.input_prefs = {{13, 13}, {200, 255}};
  Pod pod(PodId(1), entry, profile, {}, 99);

  GuardPatch patch;
  patch.id = FixId(1);
  patch.program = entry.program.id;
  patch.site = 3;
  patch.crash_direction = false;
  patch.when = {{0, 13, 13}, {1, 200, 255}};
  ASSERT_TRUE(pod.install(patch));

  for (int i = 0; i < 20; ++i) {
    const auto run = pod.run_once(1);
    EXPECT_EQ(run.trace.outcome, Outcome::kOk);
    EXPECT_TRUE(run.trace.patched);
    EXPECT_TRUE(run.fix_intervened);
  }
  EXPECT_EQ(pod.stats().fix_interventions, 20u);
}

TEST(Pod, GuidanceConsumedOncePerRun) {
  const auto entry = make_magic_lookup();
  Pod pod = make_pod(entry);
  GuidanceDirective d;
  d.program = entry.program.id;
  d.input_seed = std::vector<Value>{4242};
  pod.push_guidance(d);
  EXPECT_EQ(pod.pending_guidance(), 1u);

  const auto guided = pod.run_once(1);
  EXPECT_TRUE(guided.trace.guided);
  EXPECT_EQ(guided.trace.outcome, Outcome::kCrash);
  EXPECT_EQ(pod.pending_guidance(), 0u);

  const auto natural = pod.run_once(1);
  EXPECT_FALSE(natural.trace.guided);
}

TEST(Pod, GuidanceRejectedForWrongProgram) {
  const auto entry = make_magic_lookup();
  Pod pod = make_pod(entry);
  GuidanceDirective d;
  d.program = ProgramId(12345);
  pod.push_guidance(d);
  EXPECT_EQ(pod.pending_guidance(), 0u);
}

TEST(Pod, NonCompliantUserDropsGuidance) {
  const auto entry = make_magic_lookup();
  UserProfile profile;
  profile.guidance_compliance = 0.0;
  Pod pod(PodId(1), entry, profile, {}, 7);
  GuidanceDirective d;
  d.program = entry.program.id;
  pod.push_guidance(d);
  EXPECT_EQ(pod.pending_guidance(), 0u);
}

TEST(Pod, SamplingModeProducesSiteObservations) {
  const auto entry = make_media_parser();
  PodConfig config;
  config.sampling_rate = 2;
  Pod pod = make_pod(entry, 5, config);
  bool any_observation = false;
  for (int i = 0; i < 20; ++i) {
    const auto run = pod.run_once(1);
    ASSERT_TRUE(run.sampled.has_value());
    if (!run.sampled->observations.empty()) any_observation = true;
  }
  EXPECT_TRUE(any_observation);
}

TEST(Pod, DrawsForDayVariesAroundRate) {
  const auto entry = make_media_parser();
  UserProfile profile;
  profile.executions_per_day = 5.0;
  Pod pod(PodId(1), entry, profile, {}, 11);
  std::uint64_t total = 0;
  for (int day = 0; day < 200; ++day) total += pod.draws_for_day();
  EXPECT_GT(total, 700u);   // ~5/day with jitter
  EXPECT_LT(total, 1300u);
}

TEST(Pod, StatsAccumulate) {
  const auto entry = make_media_parser();
  Pod pod = make_pod(entry);
  for (int i = 0; i < 10; ++i) pod.run_once(1);
  EXPECT_EQ(pod.stats().runs, 10u);
}

}  // namespace
}  // namespace softborg
