file(REMOVE_RECURSE
  "CMakeFiles/sb_trace.dir/codec.cpp.o"
  "CMakeFiles/sb_trace.dir/codec.cpp.o.d"
  "CMakeFiles/sb_trace.dir/sampling.cpp.o"
  "CMakeFiles/sb_trace.dir/sampling.cpp.o.d"
  "libsb_trace.a"
  "libsb_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
