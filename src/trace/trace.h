// Execution by-products (paper §3.1).
//
// A Trace is everything a pod ships to the hive about one execution of a
// program P: the bit-vector of input-dependent branch directions, summaries
// of system-call results, the thread-schedule summary, lock events (for
// deadlock reasoning), and the outcome label. Traces are pure data — they
// depend only on `common`, so every other module can speak them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bitvec.h"
#include "common/ids.h"

namespace softborg {

// How the execution ended. Matches the paper's outcome taxonomy: explicit
// pod-detected failures (crash/deadlock), inferred end-user feedback
// (user-killed ~ "forceful program termination"), and resource exhaustion.
enum class Outcome : std::uint8_t {
  kOk = 0,
  kCrash = 1,
  kDeadlock = 2,
  kHang = 3,        // exceeded step budget
  kUserKilled = 4,  // end-user feedback: forcefully terminated
};

const char* outcome_name(Outcome o);

enum class CrashKind : std::uint8_t {
  kAssertFailure = 0,
  kDivByZero = 1,
  kBadGlobalAccess = 2,
  kExplicitAbort = 3,
};

const char* crash_kind_name(CrashKind k);

struct CrashInfo {
  CrashKind kind = CrashKind::kAssertFailure;
  std::uint32_t pc = 0;       // crashing instruction
  std::int64_t detail = 0;    // assert message id / divisor site / global idx

  bool operator==(const CrashInfo&) const = default;
};

// One lock acquisition/release event; captured for deadlock diagnosis and
// for lock-targeted schedule guidance (`step` = global execution step at
// which the event happened).
struct LockEvent {
  std::uint8_t thread = 0;
  bool acquire = true;
  std::uint16_t lock = 0;
  std::uint32_t pc = 0;
  std::uint32_t step = 0;

  bool operator==(const LockEvent&) const = default;
};

// Run-length-encoded scheduler decision: `thread` ran for `steps` steps.
struct ScheduleRun {
  std::uint8_t thread = 0;
  std::uint32_t steps = 0;

  bool operator==(const ScheduleRun&) const = default;
};

// Summarized system call: which call site, invocation index, and the
// *class* of result (e.g., success/short/fail) rather than the raw value —
// coarse on purpose (privacy, §3.1).
struct SyscallRecord {
  std::uint16_t sys_id = 0;
  std::uint32_t call_index = 0;
  std::int8_t result_class = 0;  // <0 failure, 0 nominal, >0 partial/short

  bool operator==(const SyscallRecord&) const = default;
};

// Recording granularity knob (§3.1: trade recording detail vs overhead).
enum class Granularity : std::uint8_t {
  kNone = 0,             // outcome only
  kTaintedBranches = 1,  // default: bits for input-dependent branches
  kAllBranches = 2,      // every conditional branch
  kFull = 3,             // + syscall summaries + lock events
};

struct Trace {
  TraceId id;
  ProgramId program;
  PodId pod;
  Outcome outcome = Outcome::kOk;
  std::optional<CrashInfo> crash;

  Granularity granularity = Granularity::kTaintedBranches;
  BitVec branch_bits;                  // directions, in serialized exec order
  std::vector<ScheduleRun> schedule;   // empty for single-threaded programs
  std::vector<LockEvent> lock_events;  // kFull, or always on deadlock
  std::vector<SyscallRecord> syscalls;

  std::uint64_t steps = 0;
  bool patched = false;   // a distributed fix altered this execution
  bool guided = false;    // execution followed a hive guidance directive
  std::uint64_t day = 0;  // virtual capture time

  bool operator==(const Trace&) const = default;
};

// Content signature over exactly the fields replay consumes: program,
// granularity, branch bits, schedule, outcome, crash record, and step count.
// Two traces with equal signatures replay to the same decision stream, so a
// pair of signatures under independent seeds keys the hive's replay
// memoization cache (a 128-bit effective key; pod/day/id metadata is
// deliberately excluded — it cannot change the replayed path).
std::uint64_t replay_signature(const Trace& t, std::uint64_t seed);

// Folds `v` into `h` with the splitmix64 finalizer — the hash step behind
// replay_signature/replay_key, exposed so the wire codec can compute the
// identical key while streaming a wire (see summarize_trace_wire).
inline std::uint64_t replay_mix(std::uint64_t h, std::uint64_t v) {
  h += 0x9e3779b97f4a7c15ULL + v;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

// The two fixed seeds of the hive's memoization key (first hex digits of pi).
inline constexpr std::uint64_t kReplayKeySeed = 0x243f6a8885a308d3ULL;
inline constexpr std::uint64_t kReplayCheckSeed = 0x13198a2e03707344ULL;

struct ReplayKey {
  std::uint64_t key = 0;    // cache bucket
  std::uint64_t check = 0;  // collision guard, verified on every hit
};

// Folds one value into a replay key. `key` takes the full splitmix round (it
// must index hash tables directly); `check` only breaks ties between traces
// that already collided in `key`, so a single FNV-style multiply suffices —
// the batch pipeline folds every word of every wire, and the second splitmix
// round was measurable there.
inline void replay_fold(ReplayKey& k, std::uint64_t v) {
  k.key = replay_mix(k.key, v);
  k.check = (k.check ^ v) * 0x100000001b3ULL;
}

// One-pass hash of every replay-relevant field of `t`, seeded with
// {kReplayKeySeed, kReplayCheckSeed} — the batch pipeline hashes every
// trace, so the single traversal matters.
ReplayKey replay_key(const Trace& t);

}  // namespace softborg
