// Trace anonymization and the privacy/utility trade-off (paper §3.1,
// after Castro et al. [6]).
//
// A trace's branch bit-vector is a quasi-identifier: a unique path can
// re-identify the pod (user) that produced it. SoftBorg's ingress applies:
//   * field scrubbing — pod identity stripped/bucketed, timestamps
//     quantized, syscall summaries coarsened;
//   * bit suppression — every (deterministically chosen) n-th recorded bit
//     dropped, so a released trace specifies a *family* of paths rather
//     than one path (reduces information content, measurably);
//   * a k-anonymity gate — a path is released to analysis only once at
//     least k distinct pods have produced it; rarer paths stay buffered.
//
// The information content of what is released is quantified in entropy.h;
// experiment E8 sweeps these knobs against bug-localization utility.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/state_wire.h"
#include "trace/trace.h"

namespace softborg {

struct AnonymizeConfig {
  bool strip_pod_id = true;
  std::uint32_t pod_bucket_count = 0;  // >0: keep pod identity mod buckets
  bool quantize_day = true;            // round capture day to weeks
  bool coarsen_syscalls = true;        // drop per-call indices
  std::uint32_t bit_suppression = 0;   // drop every n-th bit (0 = keep all)
};

// Scrubs one trace in place according to `config`. Suppressed bits shrink
// the bit-vector (the hive then treats the trace as specifying a path
// family; such traces are used for site statistics, not tree merging).
Trace anonymize(const Trace& t, const AnonymizeConfig& config);

// True if the trace still contains direct identifiers.
bool has_identifiers(const Trace& t);

// k-anonymity release gate: traces are buffered per path-hash until the
// path has been produced by at least k distinct pods, then the whole bucket
// is released (and future traces with that path pass straight through).
class KAnonymityGate {
 public:
  explicit KAnonymityGate(std::size_t k) : k_(k) {}

  // Returns the traces released by this arrival (possibly empty; possibly
  // the whole backlog of this path).
  std::vector<Trace> add(Trace t);

  std::size_t buffered() const;
  std::size_t released_paths() const { return released_.size(); }
  std::size_t k() const { return k_; }

  // Durable-store serialization (sorted keys, so equal gates give equal
  // bytes). k itself is config, not state — the loader must have built the
  // gate with the same k; load_state rejects a mismatch so a snapshot from a
  // differently-configured run cannot silently change release semantics.
  void save_state(Bytes& out) const;
  bool load_state(StateReader& r);

 private:
  struct Bucket {
    std::vector<Trace> pending;
    std::unordered_set<std::uint64_t> pods;
  };

  std::size_t k_;
  std::unordered_map<std::uint64_t, Bucket> buckets_;
  std::unordered_set<std::uint64_t> released_;
};

}  // namespace softborg
