# Empty dependencies file for bench_e4_deadlock_immunity.
# This may be replaced when dependencies are built.
