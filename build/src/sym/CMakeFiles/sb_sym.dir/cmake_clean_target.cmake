file(REMOVE_RECURSE
  "libsb_sym.a"
)
