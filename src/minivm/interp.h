// MiniVM interpreter with pod-style instrumentation.
//
// Executes a Program deterministically given (inputs, seed): the seed drives
// both the thread scheduler and the environment model, so a run is exactly
// reproducible. While executing it captures the paper's §3.1 by-products —
// branch bit-vector (tainted branches only by default), schedule summary,
// syscall summaries, lock events — and classifies the outcome.
//
// The interpreter also contains the two runtime fix hooks (GuardPatch branch
// steering and deadlock-immunity lock serialization) and the guidance hooks
// (schedule steering plans and syscall fault injection).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "minivm/env.h"
#include "minivm/fixes.h"
#include "minivm/program.h"
#include "trace/trace.h"

namespace softborg {

struct OpPairCounts;  // minivm/decode.h

// A schedule steering plan: follow these (thread, steps) runs while the
// named thread is runnable; fall back to the seeded scheduler afterwards.
struct SchedulePlan {
  std::vector<ScheduleRun> runs;
};

// One observed branch decision, in serialized execution order. Collected
// only when ExecConfig::collect_branch_events is set (tree building, debug).
struct BranchEvent {
  std::uint32_t site = 0;
  bool taken = false;
  bool tainted = false;
  std::uint8_t thread = 0;

  bool operator==(const BranchEvent&) const = default;
};

struct ExecConfig {
  std::vector<Value> inputs;
  std::uint64_t seed = 1;
  std::uint64_t max_steps = 200'000;  // beyond this: Outcome::kHang
  std::uint32_t quantum = 6;          // scheduler quantum (steps)
  Granularity granularity = Granularity::kTaintedBranches;

  const FixSet* fixes = nullptr;
  const SchedulePlan* schedule_plan = nullptr;
  const FaultPlan* fault_plan = nullptr;
  const EnvModel* env = nullptr;  // defaults to a shared default EnvModel

  bool collect_branch_events = false;
  bool detect_deadlock = true;

  // Execute the superinstruction-fused decoded stream (decode.h). Fusion is
  // trace-invisible — fused pairs debit steps/quantum once per original
  // instruction — so this is a performance knob, not a semantics knob.
  bool enable_fusion = true;
  // When set, the run tallies dynamic fallthrough opcode pairs into the
  // pointed-to counters (and runs unfused, so raw pairs are observable).
  OpPairCounts* pair_counts = nullptr;
};

struct ExecResult {
  Trace trace;
  std::vector<Value> outputs;
  std::vector<BranchEvent> branch_events;  // iff collect_branch_events
  // Wait-for cycle description when outcome == kDeadlock: the lock each
  // cycle participant is blocked on, in cycle order.
  std::vector<LockEvent> deadlock_cycle;
  bool fix_intervened = false;  // some installed fix altered this run
};

// Runs `program` under `config`. Thread-safe: no shared mutable state.
ExecResult execute(const Program& program, const ExecConfig& config);

// The pre-dispatch-rebuild nested-switch interpreter, kept verbatim as a
// differential baseline (interp_ref.cpp). Semantically identical to
// execute(); ignores enable_fusion / pair_counts. Tests and benchmarks only.
ExecResult execute_reference(const Program& program, const ExecConfig& config);

// The process-wide default environment model (immutable).
const EnvModel& default_env();

}  // namespace softborg
