
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tree/exec_tree.cpp" "src/tree/CMakeFiles/sb_tree.dir/exec_tree.cpp.o" "gcc" "src/tree/CMakeFiles/sb_tree.dir/exec_tree.cpp.o.d"
  "/root/repo/src/tree/tree_codec.cpp" "src/tree/CMakeFiles/sb_tree.dir/tree_codec.cpp.o" "gcc" "src/tree/CMakeFiles/sb_tree.dir/tree_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sym/CMakeFiles/sb_sym.dir/DependInfo.cmake"
  "/root/repo/build/src/minivm/CMakeFiles/sb_minivm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
