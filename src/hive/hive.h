// The hive (paper §3, Fig. 1): SoftBorg's aggregation and analysis center.
//
// Responsibilities, in the paper's words: "merges information extracted
// from by-products with its existing knowledge of P, identifies
// misbehaviors in P, synthesizes fixes that improve P, and distributes
// these fixes back to the pods"; plus cumulative proofs and execution
// guidance.
//
// Pipeline per ingested trace:
//   decode -> dedup -> (k-anonymity gate, optional) -> bug tracking
//   -> lock-order analysis -> replay to decision stream -> tree merge.
// process() then turns newly found bugs into validated fixes: candidates
// scoring above the auto threshold are approved for distribution;
// schedule-dependent assertion bugs and low-scoring candidates land in the
// repair lab for a human decision (paper §3.3).
//
// ingest_batch() runs the same pipeline staged: (1) decode, (2) replay to
// decision streams, (3) per-program tree merge. Stages 1–2 are pure
// per-trace work and fan out on a thread pool when `ingest_threads > 1`;
// stage 3 groups traces by program so every ExecTree keeps a single writer
// and needs no locking. Batch replay is memoized: traces with identical
// replay-relevant content (see replay_signature) skip the interpreter
// (replay is deterministic, so a cached decision stream is exact). The
// batch path is behaviorally identical to serial ingestion — same trees,
// same stats — regardless of thread count (see tests/ingest_batch_test.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/flat_hash.h"
#include "common/thread_pool.h"

#include "hive/bugs.h"
#include "hive/fixer.h"
#include "hive/guidance.h"
#include "hive/proof.h"
#include "minivm/corpus.h"
#include "privacy/anonymize.h"
#include "sym/solver_cache.h"
#include "trace/sampling.h"
#include "tree/exec_tree.h"

namespace softborg {

struct CoopResult;

struct HiveConfig {
  double auto_fix_threshold = 0.9;
  // A failure matching a fixed bug's signature only counts as a recurrence
  // after this many days past fix approval (fix propagation takes time;
  // failures from not-yet-patched pods are expected in the window).
  std::uint64_t recurrence_grace_days = 2;
  std::size_t k_anonymity = 1;  // 1 = gate disabled
  std::uint64_t seed = 0x417e;
  // Worker threads for the decode and replay stages of ingest_batch();
  // <= 1 runs the batch pipeline inline on the caller (identical results).
  std::size_t ingest_threads = 0;
  // Replay-memoization entries kept before the cache resets (generational
  // eviction: O(1) amortized, good enough for streaming trace workloads).
  std::size_t replay_cache_capacity = 1 << 16;
  // Solver-result recycling (sym/solver_cache.h): when true, proof attempts
  // and guidance planning route feasibility queries through a hive-wide
  // cache so constraints proven once are never re-solved.
  bool solver_cache = true;
  // Worker threads for attempt_proofs_all/_for; <= 1 runs the sweep inline
  // on the caller. Deliberately not capped at the hardware concurrency so
  // determinism tests can exercise real interleavings at high counts.
  std::size_t proof_threads = 0;
  // First ProofId this hive issues (ShardedHive gives each shard a disjoint
  // block, mirroring FixerConfig::next_fix_id).
  std::uint64_t next_proof_id = 1;
  FixerConfig fixer;
  ProofBudget proof_budget;
  GuidancePlannerConfig guidance;
};

struct HiveStats {
  std::uint64_t traces_ingested = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t decode_failures = 0;
  std::uint64_t replay_failures = 0;
  std::uint64_t patched_traces_skipped = 0;
  std::uint64_t gated_traces = 0;  // held by the k-anonymity gate
  std::uint64_t paths_merged = 0;
  std::uint64_t new_paths = 0;
  std::uint64_t bugs_found = 0;
  std::uint64_t fixes_approved = 0;
  std::uint64_t repair_lab_entries = 0;
  std::uint64_t proofs_revoked = 0;
  std::uint64_t fixed_traces_seen = 0;   // fix-intervention telemetry
  std::uint64_t fix_recurrences = 0;     // a fixed bug's signature came back
  std::uint64_t bugs_reopened = 0;

  bool operator==(const HiveStats&) const = default;
};

// Ingestion-pipeline telemetry; all fields cover ingest_batch() only (the
// single-trace path neither batches nor memoizes).
struct IngestStats {
  std::uint64_t batches = 0;
  std::uint64_t batch_traces = 0;         // wires handed to ingest_batch
  std::uint64_t replay_cache_hits = 0;    // interpreter runs skipped
  std::uint64_t replay_cache_misses = 0;  // interpreter runs performed
  double decode_seconds = 0.0;
  double serial_seconds = 0.0;  // the unparallelizable interlude (Amdahl term)
  double replay_seconds = 0.0;
  double merge_seconds = 0.0;

  double cache_hit_rate() const {
    const std::uint64_t total = replay_cache_hits + replay_cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(replay_cache_hits) /
                            static_cast<double>(total);
  }
  double batch_traces_per_second() const {
    const double secs =
        decode_seconds + serial_seconds + replay_seconds + merge_seconds;
    return secs <= 0.0 ? 0.0 : static_cast<double>(batch_traces) / secs;
  }
};

class Hive {
 public:
  // `corpus` must outlive the hive (the hive analyzes these programs).
  Hive(const std::vector<CorpusEntry>* corpus, HiveConfig config = {});

  // --- ingestion ------------------------------------------------------------
  void ingest_bytes(const Bytes& wire);
  void ingest(Trace t);
  void ingest_sampled(const SampledTrace& t);

  // Ingests a batch of encoded traces through the staged pipeline (decode ->
  // replay -> per-program merge), parallelized on `ingest_threads` workers.
  // Produces exactly the same trees and HiveStats as calling ingest_bytes()
  // on each wire in order.
  void ingest_batch(const std::vector<Bytes>& wires);

  // --- analysis & synthesis ---------------------------------------------------
  // Processes newly recorded bugs; returns fixes approved for distribution.
  std::vector<FixCandidate> process();

  // Guidance directives per program (frontier witnesses for single-threaded
  // programs, schedule plans for multi-threaded ones).
  std::vector<GuidanceDirective> plan_guidance(std::size_t per_program);

  // The per-program slice of plan_guidance: directives for `entry` only.
  // ShardedHive uses this to plan exactly the programs a shard owns instead
  // of planning the whole corpus and discarding the unowned directives.
  std::vector<GuidanceDirective> plan_guidance_for(const CorpusEntry& entry,
                                                   std::size_t per_program);

  // Attempts a cumulative proof for one program.
  ProofCertificate attempt_proof(ProgramId program, Property property);

  // Proof gap closure for the whole corpus (or an explicit program slice),
  // fanned out on `proof_threads` workers. Programs own disjoint trees, so
  // the attempts need no locks; each attempt runs against a snapshot copy of
  // the shared solver cache and the snapshots merge back in corpus order at
  // the barrier, so certificates, trees, and the merged cache are identical
  // for every worker count (including the inline <= 1 path). Certificates
  // come back in corpus order; publishable ones are published in that order.
  std::vector<ProofCertificate> attempt_proofs_all(Property property);
  std::vector<ProofCertificate> attempt_proofs_for(
      const std::vector<const CorpusEntry*>& entries, Property property);

  // --- introspection ----------------------------------------------------------
  ExecTree* tree(ProgramId program);
  const ExecTree* tree(ProgramId program) const;
  BugTracker& bug_tracker() { return bugs_; }
  const BugTracker& bug_tracker() const { return bugs_; }
  const std::vector<RepairLabEntry>& repair_lab() const { return repair_lab_; }
  const HiveStats& stats() const { return stats_; }
  const IngestStats& ingest_stats() const { return ingest_stats_; }
  const SiteStats& site_stats(ProgramId program);
  // Published certificates. A certificate is revoked (paper §3.3: the hive
  // must "decide whether the instrumentation invalidates the hive's
  // existing knowledge and proofs") when a fix for its program ships: the
  // deployed behaviour is P+fixes, no longer the P the proof talks about.
  struct PublishedProof {
    ProofCertificate certificate;
    bool revoked = false;
  };
  const std::vector<PublishedProof>& published_proofs() const {
    return proofs_;
  }
  std::size_t valid_proof_count() const;

  // The hive-wide solver-result recycling cache (empty and unused when
  // HiveConfig::solver_cache is false). Exposed so fleets can seed a hive
  // from another's accumulated results (merge_from) — the paper's
  // "collective information recycling" across hives.
  SolverCache& solver_cache() { return solver_cache_; }
  const SolverCache& solver_cache() const { return solver_cache_; }

  // Telemetry for every proof attempt this hive made (attempt_proof and the
  // sweep paths alike), summed from the certificates.
  struct ProofClosureStats {
    std::uint64_t attempts = 0;
    std::uint64_t publishable = 0;
    std::uint64_t refuted = 0;  // attempts that found a counterexample
    std::uint64_t solver_calls = 0;
    std::uint64_t solver_cache_hits = 0;
    std::uint64_t solver_unsat_subsumed = 0;
    std::uint64_t solver_models_reused = 0;

    std::uint64_t recycled() const {
      return solver_cache_hits + solver_unsat_subsumed + solver_models_reused;
    }
    bool operator==(const ProofClosureStats&) const = default;
  };
  const ProofClosureStats& proof_stats() const { return proof_stats_; }

  // True when this hive currently holds an unrevoked certificate for
  // `program` (the per-program slice of valid_proof_count).
  bool has_valid_proof(ProgramId program) const;

  // Cooperative-exploration outcomes, accumulated per partition strategy
  // (hive/coop.h) so the adaptive loop and operators can see coop
  // efficiency — idle ticks and churn-wasted work were previously invisible
  // to the obs layer. Indexed by PartitionStrategy.
  struct CoopStrategyStats {
    std::uint64_t runs = 0;
    std::uint64_t completed = 0;
    std::uint64_t ticks = 0;
    std::uint64_t useful_steps = 0;
    std::uint64_t wasted_steps = 0;
    std::uint64_t idle_ticks = 0;
    std::uint64_t worker_deaths = 0;

    bool operator==(const CoopStrategyStats&) const = default;
  };
  // Folds one finished coop run into the per-strategy ledger and publishes
  // the deltas (a serial barrier: coop runs are single-threaded).
  void record_coop_outcome(const CoopResult& result);
  const std::array<CoopStrategyStats, 3>& coop_stats() const {
    return coop_stats_;
  }

  // --- durable store (src/store) ---------------------------------------------
  // save_state/load_state cover every accumulated ledger except the trees
  // and the solver cache (separate parts below, so warm starts can import
  // them without the run-specific state) and the replay memoization cache
  // (pure derived perf state: replay is deterministic, so it re-fills
  // identically — only IngestStats timing telemetry could notice).
  // load_state expects a hive constructed over the same corpus with the
  // same config; it validates every embedded record against the corpus and
  // re-baselines metric publication at the restored stats. False means the
  // snapshot is corrupt — discard the hive and cold-start.
  void save_state(Bytes& out) const;
  bool load_state(StateReader& r);

  // Per-program execution trees, serialized in corpus order on the v2 tree
  // wire (tree/tree_codec). load_trees validates each tree through the
  // hardened decoder and rejects programs outside the corpus.
  void save_trees(Bytes& out) const;
  bool load_trees(StateReader& r);

  // The persisted crashing/regression set: one sanitized trace wire per
  // recorded bug exemplar (failing outcomes only), in bug-database order.
  // Identity fields are zeroed (trace id 0 skips dedup) so a warm-started
  // fleet can replay yesterday's crashers before today's fresh traffic —
  // fuzzer-style corpus replay across process lifetimes.
  std::vector<Bytes> regression_inputs() const;

 private:
  const CorpusEntry* entry_of(ProgramId program) const;
  void ingest_impl(Trace t);  // ingest() minus the telemetry publication
  void ingest_released(Trace t);
  // Everything before replay: dedup-independent bug tracking, lock-order
  // analysis, and the natural-execution filters. Returns the corpus entry
  // when `t` still needs replay + merge, nullptr when the pipeline ends.
  const CorpusEntry* prepare_released(const Trace& t);
  // Post-record bookkeeping shared by the trace and summary ingestion paths:
  // fix-recurrence monitoring, new-bug stats, schedule-dependent marking.
  void note_bug_sighting(Bug* bug, const CorpusEntry& entry,
                         std::uint64_t day);
  // Resolves `key` through the memoization cache; returns the decision
  // stream, or nullptr when replay fails. On a miss the trace is replayed —
  // from `decoded` when the caller already has it, otherwise by decoding
  // `wire` (deferred decode: cache hits never materialize the vectors).
  // With `synchronized` the cache is mutex-guarded (stage 2 fans out);
  // inline batches skip the locks.
  std::shared_ptr<const std::vector<SymDecision>> replay_decisions(
      const CorpusEntry& entry, const ReplayKey& key, const Trace* decoded,
      const Bytes* wire, bool synchronized);
  void merge_decisions(const Trace& t,
                       const std::vector<SymDecision>& decisions);
  // Null when the effective worker count is <= 1. ingest_threads is capped
  // at the hardware concurrency: extra workers beyond physical cores only
  // add context switches on the pure-CPU decode/replay stages.
  ThreadPool* ingest_pool();
  // Null when proof_threads <= 1 (sweeps run inline). Unlike ingest_pool,
  // not capped: see HiveConfig::proof_threads.
  ThreadPool* proof_pool();
  // Publishes `cert` if publishable and folds its telemetry into
  // proof_stats_; shared by attempt_proof and the sweep barrier.
  void record_certificate(const ProofCertificate& cert);
  // Pushes the deltas of stats_ / ingest_stats_ / proof_stats_ accumulated
  // since the last publication into the process-wide registry. Called at
  // serial boundaries only (end of a trace/batch ingest, the certificate
  // barrier, process()) so the pipeline hot paths carry no telemetry cost
  // and the counters stay deterministic across worker counts (DESIGN.md,
  // "Observability").
  void publish_metrics();

  const std::vector<CorpusEntry>* corpus_;
  FlatU64PtrMap<const CorpusEntry> entry_index_;  // program id -> entry
  HiveConfig config_;
  HiveStats stats_;
  IngestStats ingest_stats_;
  // publish_metrics() delta baselines: how much of each stats struct has
  // already been pushed into the registry.
  HiveStats obs_published_stats_;
  IngestStats obs_published_ingest_;
  ProofClosureStats obs_published_proof_;
  std::array<CoopStrategyStats, 3> coop_stats_{};
  std::array<CoopStrategyStats, 3> obs_published_coop_{};

  // Hot lookup structures are hashed, not ordered: nothing user-visible
  // iterates them (ordered outputs — proofs, guidance, exports — iterate the
  // stably-ordered corpus instead). Trees honor a single-writer invariant:
  // ingest_batch gives each program's tree to exactly one merge task.
  std::unordered_map<std::uint64_t, ExecTree> trees_;           // by program
  std::unordered_map<std::uint64_t, LockOrderAnalyzer> locks_;  // by program
  std::unordered_map<std::uint64_t, SiteStats> sites_;          // by program
  FlatU64Set seen_trace_ids_;
  std::unique_ptr<KAnonymityGate> gate_;  // null when k_anonymity <= 1

  // Replay memoization: replay_key() pairs a splitmix-chained `key` with an
  // independently seeded check hash; hits verify both. A null decisions
  // pointer caches a failing replay. Guarded by replay_mu_ when stage 2 runs parallel.
  //
  // Open-addressed and insert-only, cleared wholesale at capacity
  // (generational eviction). Replay keys are pre-mixed, so the low bits
  // index directly. Slot key 0 means empty; a genuine zero key (one in
  // 2^64) is simply never cached.
  struct ReplayCache {
    struct Slot {
      std::uint64_t key = 0;
      std::uint64_t check = 0;
      std::shared_ptr<const std::vector<SymDecision>> decisions;
    };
    // Hit: the slot for `key` with a matching check; null otherwise (a
    // matching key with a stale check reads as a miss; insert replaces it).
    const Slot* find(const ReplayKey& key) const;
    void insert(const ReplayKey& key,
                std::shared_ptr<const std::vector<SymDecision>> decisions,
                std::size_t capacity);

    std::vector<Slot> slots;  // always a power of two (or empty)
    std::size_t count = 0;
  };
  std::mutex replay_mu_;
  ReplayCache replay_cache_;
  std::unique_ptr<ThreadPool> ingest_pool_;  // lazily created
  std::unique_ptr<ThreadPool> proof_pool_;   // lazily created

  SolverCache solver_cache_;
  ProofClosureStats proof_stats_;

  BugTracker bugs_;
  FixSynthesizer fixer_;
  GuidancePlanner planner_;
  ProofEngine prover_;
  Rng rng_;

  void revoke_proofs(ProgramId program);

  std::uint64_t latest_day_seen_ = 0;
  std::unordered_set<std::uint64_t> fix_attempted_bugs_;
  std::unordered_map<std::uint64_t, std::uint64_t> recurrences_;  // bug -> n
  std::vector<RepairLabEntry> repair_lab_;
  std::vector<PublishedProof> proofs_;
};

}  // namespace softborg
