// Control-plane message codecs for the distributed hive.
//
// Traces travel as kMsgTrace carrying the v2 trace wire verbatim; everything
// else the router and shard workers say to each other is one of these small
// varint-encoded control payloads. Decoders validate and return nullopt on
// malformed input (same posture as trace/codec.h — the hive must survive
// hostile or corrupt peers).
#pragma once

#include <optional>

#include "common/varint.h"
#include "hive/hive.h"

namespace softborg::dist {

// Worker → router, first message after connecting (and after a restart):
// which shard this is and how many unacknowledged traces the router may have
// in flight toward it (the credit window).
struct HelloMsg {
  std::uint64_t shard_index = 0;
  std::uint32_t credit_window = 0;
  bool resumed = false;  // worker warm-started from a durable snapshot
  // Handshake clock pair sampled at send time, for aligning this process's
  // monotonic timestamps onto the fleet timeline (obs/recorder.h dumps carry
  // the same pair). Both 0 unless tracing is enabled, so the untraced
  // handshake stays deterministic. Decoders also accept the pre-tracing
  // 3-field hello.
  std::uint64_t mono_ns = 0;
  std::uint64_t real_ns = 0;

  bool operator==(const HelloMsg&) const = default;
};

Bytes encode_hello(const HelloMsg& m);
std::optional<HelloMsg> decode_hello(const Bytes& bytes);

// Worker → router at shutdown: the worker's closing ledger, including its
// full HiveStats so a driver can aggregate fleet totals (and the socket-vs-
// SimNet differential can compare per-shard stats byte for byte).
struct WorkerStatsMsg {
  std::uint64_t shard_index = 0;
  std::uint64_t ingested = 0;   // traces admitted and batched into the hive
  std::uint64_t shed = 0;       // worker-side admission-control sheds
  std::uint64_t queue_max_depth = 0;
  std::uint64_t batches = 0;
  std::uint64_t snapshots_written = 0;
  HiveStats hive;

  bool operator==(const WorkerStatsMsg&) const = default;
};

Bytes encode_worker_stats(const WorkerStatsMsg& m);
std::optional<WorkerStatsMsg> decode_worker_stats(const Bytes& bytes);

}  // namespace softborg::dist
