#include "minivm/replay.h"

#include <algorithm>
#include <deque>
#include <optional>

namespace softborg {

namespace {

Value wrap_add(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint64_t>(a) +
                            static_cast<std::uint64_t>(b));
}
Value wrap_sub(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint64_t>(a) -
                            static_cast<std::uint64_t>(b));
}
Value wrap_mul(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint64_t>(a) *
                            static_cast<std::uint64_t>(b));
}

// Three-valued register: a concrete value, or "unknown" (derived from a
// program-external event whose value the hive never sees).
struct MaybeVal {
  Value v = 0;
  bool known = true;
};

struct ThreadR {
  std::uint32_t pc = 0;
  std::vector<MaybeVal> regs;
  bool halted = false;
  std::optional<std::uint16_t> blocked_on;
  std::vector<std::uint16_t> held;

  bool runnable() const { return !halted && !blocked_on; }
};

struct LockR {
  int owner = -1;
  std::deque<std::uint8_t> waiters;
};

class Replayer {
 public:
  Replayer(const Program& p, const Trace& t) : p_(p), t_(t) {
    threads_.resize(p.num_threads());
    for (std::size_t i = 0; i < threads_.size(); ++i) {
      threads_[i].pc = p.thread_entries[i];
      threads_[i].regs.assign(p.num_regs, MaybeVal{});
    }
    globals_.assign(p.num_globals, MaybeVal{});
    locks_.resize(p.num_locks);
    record_all_ = t.granularity == Granularity::kAllBranches ||
                  t.granularity == Granularity::kFull;
  }

  ReplayResult run();

 private:
  bool step(std::uint8_t t);  // false => stop (error or recorded crash)
  void fail(const std::string& msg) {
    if (result_.error.empty()) result_.error = msg;
    failed_ = true;
  }
  bool next_bit(bool* bit) {
    if (bit_pos_ >= t_.branch_bits.size()) {
      fail("trace bit-vector exhausted");
      return false;
    }
    *bit = t_.branch_bits[bit_pos_++];
    return true;
  }
  // Recorded crash at this pc ends the replay successfully. The crash site
  // can be visited many times before the failing occurrence (e.g. a div in
  // a loop), so the recorded crash is only accepted on the *final* recorded
  // step — the crashing instruction was the last one executed.
  bool crash_recorded_here(std::uint32_t pc, CrashKind kind) const {
    return t_.outcome == Outcome::kCrash && t_.crash.has_value() &&
           t_.crash->pc == pc && t_.crash->kind == kind && steps_ == t_.steps;
  }

  const Program& p_;
  const Trace& t_;
  std::vector<ThreadR> threads_;
  std::vector<MaybeVal> globals_;
  std::vector<LockR> locks_;
  std::size_t bit_pos_ = 0;
  std::uint64_t steps_ = 0;
  bool record_all_ = false;
  bool failed_ = false;
  bool finished_ = false;  // reached recorded terminal condition
  ReplayResult result_;
};

bool Replayer::step(std::uint8_t t) {
  ThreadR& th = threads_[t];
  if (th.halted) {
    fail("schedule names a halted thread");
    return false;
  }
  if (th.blocked_on) {
    fail("schedule names a blocked thread");
    return false;
  }
  const Instr& ins = p_.at(th.pc);
  auto& regs = th.regs;

  switch (ins.op) {
    case Op::kConst:
      regs[ins.a] = {ins.imm, true};
      th.pc++;
      break;
    case Op::kMov:
      regs[ins.a] = regs[ins.b];
      th.pc++;
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kCmpLt:
    case Op::kCmpLe:
    case Op::kCmpEq:
    case Op::kCmpNe: {
      const MaybeVal x = regs[ins.b], y = regs[ins.c];
      MaybeVal r;
      r.known = x.known && y.known;
      if (r.known) {
        switch (ins.op) {
          case Op::kAdd: r.v = wrap_add(x.v, y.v); break;
          case Op::kSub: r.v = wrap_sub(x.v, y.v); break;
          case Op::kMul: r.v = wrap_mul(x.v, y.v); break;
          case Op::kCmpLt: r.v = x.v < y.v; break;
          case Op::kCmpLe: r.v = x.v <= y.v; break;
          case Op::kCmpEq: r.v = x.v == y.v; break;
          case Op::kCmpNe: r.v = x.v != y.v; break;
          default: break;
        }
      }
      regs[ins.a] = r;
      th.pc++;
      break;
    }
    case Op::kDiv:
    case Op::kMod: {
      const MaybeVal x = regs[ins.b], y = regs[ins.c];
      if (!y.known) {
        // Data-dependent crash check: its survive/crash decision is in the
        // trace, exactly like an input-dependent branch.
        bool survived;
        if (!next_bit(&survived)) return false;
        result_.decisions.push_back({ins.site, survived, true, t});
        if (!survived) {
          if (crash_recorded_here(th.pc, CrashKind::kDivByZero)) {
            finished_ = true;
            return false;
          }
          fail("crash decision recorded but trace has no matching crash");
          return false;
        }
        regs[ins.a] = {0, false};
        th.pc++;
        break;
      }
      if (record_all_) {
        bool recorded;
        if (!next_bit(&recorded)) return false;
        if (recorded != (y.v != 0)) {
          fail("deterministic check direction mismatch");
          return false;
        }
      }
      if (y.v == 0) {
        if (crash_recorded_here(th.pc, CrashKind::kDivByZero)) {
          finished_ = true;
          return false;
        }
        fail("deterministic div-by-zero not recorded in trace");
        return false;
      }
      MaybeVal r;
      r.known = x.known;
      if (r.known) {
        if (ins.op == Op::kDiv) {
          r.v = (x.v == INT64_MIN && y.v == -1) ? INT64_MIN : x.v / y.v;
        } else {
          r.v = (x.v == INT64_MIN && y.v == -1) ? 0 : x.v % y.v;
        }
      }
      regs[ins.a] = r;
      th.pc++;
      break;
    }
    case Op::kBranchIf: {
      const MaybeVal cond = regs[ins.a];
      bool dir;
      if (!cond.known) {
        // Input-dependent branch: direction comes from the trace.
        if (!next_bit(&dir)) return false;
        result_.decisions.push_back({ins.site, dir, true, t});
      } else {
        dir = cond.v != 0;
        if (record_all_) {
          // Cross-check the recorded direction of deterministic branches.
          bool recorded;
          if (!next_bit(&recorded)) return false;
          if (recorded != dir) {
            fail("deterministic branch direction mismatch");
            return false;
          }
        }
      }
      th.pc = dir ? ins.b : ins.c;
      break;
    }
    case Op::kJump:
      th.pc = ins.a;
      break;
    case Op::kInput:
    case Op::kSyscall:
      // Program-external values are unknown to the hive.
      regs[ins.a] = {0, false};
      th.pc++;
      break;
    case Op::kLoadG:
      regs[ins.a] = globals_[ins.b];
      th.pc++;
      break;
    case Op::kStoreG:
      globals_[ins.a] = regs[ins.b];
      th.pc++;
      break;
    case Op::kLock: {
      const std::uint16_t l = static_cast<std::uint16_t>(ins.a);
      LockR& lock = locks_[l];
      if (lock.owner < 0) {
        lock.owner = t;
        th.held.push_back(l);
        th.pc++;
      } else {
        th.blocked_on = l;
        lock.waiters.push_back(t);
        // A recorded deadlock ends the replay once the cycle closes; the
        // scheduler loop notices no-runnable below.
      }
      break;
    }
    case Op::kUnlock: {
      const std::uint16_t l = static_cast<std::uint16_t>(ins.a);
      LockR& lock = locks_[l];
      if (lock.owner != static_cast<int>(t)) {
        if (crash_recorded_here(th.pc, CrashKind::kExplicitAbort)) {
          finished_ = true;
          return false;
        }
        fail("unlock of lock not held");
        return false;
      }
      lock.owner = -1;
      th.held.erase(std::find(th.held.begin(), th.held.end(), l));
      th.pc++;
      while (!lock.waiters.empty()) {
        const std::uint8_t w = lock.waiters.front();
        lock.waiters.pop_front();
        ThreadR& wt = threads_[w];
        if (!wt.blocked_on || *wt.blocked_on != l) continue;
        lock.owner = w;
        wt.blocked_on.reset();
        wt.held.push_back(l);
        wt.pc++;
        break;
      }
      break;
    }
    case Op::kAssert: {
      const MaybeVal cond = regs[ins.a];
      if (!cond.known) {
        bool survived;
        if (!next_bit(&survived)) return false;
        result_.decisions.push_back({ins.site, survived, true, t});
        if (!survived) {
          if (crash_recorded_here(th.pc, CrashKind::kAssertFailure)) {
            finished_ = true;
            return false;
          }
          fail("crash decision recorded but trace has no matching crash");
          return false;
        }
        th.pc++;
        break;
      }
      if (record_all_) {
        bool recorded;
        if (!next_bit(&recorded)) return false;
        if (recorded != (cond.v != 0)) {
          fail("deterministic check direction mismatch");
          return false;
        }
      }
      if (cond.v == 0) {
        if (crash_recorded_here(th.pc, CrashKind::kAssertFailure)) {
          finished_ = true;
          return false;
        }
        fail("deterministic assert failure not recorded in trace");
        return false;
      }
      th.pc++;
      break;
    }
    case Op::kAbort:
      if (crash_recorded_here(th.pc, CrashKind::kExplicitAbort)) {
        finished_ = true;
        return false;
      }
      fail("abort reached but trace did not record it");
      return false;
    case Op::kOutput:
    case Op::kYield:
      th.pc++;
      break;
    case Op::kHalt:
      th.halted = true;
      break;
  }
  return true;
}

ReplayResult Replayer::run() {
  result_.outcome = t_.outcome;
  const std::uint64_t budget = t_.steps;

  if (p_.num_threads() > 1) {
    // Multi-threaded: follow the recorded schedule exactly.
    for (const auto& run : t_.schedule) {
      if (failed_ || finished_) break;
      if (run.thread >= threads_.size()) {
        fail("schedule names an unknown thread");
        break;
      }
      for (std::uint32_t i = 0; i < run.steps; ++i) {
        steps_++;
        if (!step(run.thread)) break;
        if (failed_ || finished_) break;
      }
    }
  } else {
    // Single-threaded: run thread 0 for the recorded number of steps.
    while (!failed_ && !finished_ && steps_ < budget &&
           threads_[0].runnable()) {
      steps_++;
      if (!step(0)) break;
    }
  }

  result_.steps_used = steps_;
  result_.bits_consumed = bit_pos_;
  if (failed_) {
    result_.ok = false;
    return result_;
  }
  // Consistency: every recorded bit must have been consumed.
  if (bit_pos_ != t_.branch_bits.size()) {
    result_.ok = false;
    result_.error = "unconsumed branch bits";
    return result_;
  }
  result_.ok = true;
  return result_;
}

}  // namespace

ReplayResult replay_trace(const Program& program, const Trace& trace) {
  if (trace.granularity == Granularity::kNone) {
    ReplayResult r;
    r.error = "trace has no branch bits (granularity=kNone)";
    return r;
  }
  if (trace.patched) {
    // A fix altered control flow; the recorded path is not a natural path
    // of P and must not enter the execution tree (§3.3).
    ReplayResult r;
    r.error = "patched traces are not replayable as natural executions";
    return r;
  }
  Replayer rep(program, trace);
  return rep.run();
}

}  // namespace softborg
