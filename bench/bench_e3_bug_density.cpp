// E3 — Self-improvement: "the more a program is used, the more reliable it
// should become" (paper §2), closing Fig. 1's feedback loop.
//
// Setup: the full buggy corpus deployed to a fleet for 30 virtual days,
// twice — once with the fix-distribution loop ON and once with it OFF
// (ablation). Same seed, same users, same network.
//
// Reported: per-day failure rate for both deployments, plus the aggregate
// failure-rate reduction once fixes have propagated.
//
// Expected shape: the ON deployment's failure rate drops by an order of
// magnitude after the first fixes ship (only the un-auto-fixable
// schedule-race residue remains); the OFF deployment stays flat.
#include <cstdio>

#include "bench_json.h"
#include "core/softborg.h"

using namespace softborg;

namespace {

std::vector<DayMetrics> deploy(std::vector<CorpusEntry> corpus,
                               bool distribute_fixes) {
  WorldConfig config;
  config.pods_per_program = 60;
  config.days = 30;
  config.mean_runs_per_day = 5.0;
  config.seed = 3;
  config.distribute_fixes = distribute_fixes;
  World world(std::move(corpus), config);
  world.run();
  return world.history();
}

// The programs whose planted bugs SoftBorg can fix automatically; the
// schedule race (race_counter) is the paper's repair-lab residue and is
// reported separately below.
std::vector<CorpusEntry> fixable_corpus() {
  std::vector<CorpusEntry> corpus;
  corpus.push_back(make_media_parser());
  corpus.push_back(make_bank_transfer());
  corpus.push_back(make_file_copier());
  corpus.push_back(make_magic_lookup());
  return corpus;
}

}  // namespace

int main(int argc, char** argv) {
  BenchJsonWriter json("e3_bug_density", argc, argv);
  std::printf("# E3: failure rate over deployment time, with vs without the "
              "fix loop\n");
  std::printf("## corpus of auto-fixable bugs (crashes + deadlock)\n");
  const auto with_fixes = deploy(fixable_corpus(), true);
  const auto without_fixes = deploy(fixable_corpus(), false);

  std::printf("%-5s | %-9s %-8s %-8s %-6s | %-9s %-8s\n", "day",
              "rate%_on", "averted", "fixed", "paths", "rate%_off", "bugs_off");
  for (std::size_t i = 0; i < with_fixes.size(); ++i) {
    const auto& on = with_fixes[i];
    const auto& off = without_fixes[i];
    std::printf("%-5llu | %-9.3f %-8llu %-8zu %-6zu | %-9.3f %-8zu\n",
                static_cast<unsigned long long>(on.day),
                on.failure_rate * 100.0,
                static_cast<unsigned long long>(on.fix_interventions),
                on.bugs_fixed_total, on.total_paths,
                off.failure_rate * 100.0, off.bugs_found_total);
  }

  auto window_rate = [](const std::vector<DayMetrics>& h, std::uint64_t lo,
                        std::uint64_t hi) {
    std::uint64_t runs = 0, failures = 0;
    for (const auto& d : h) {
      if (d.day >= lo && d.day <= hi) {
        runs += d.runs;
        failures += d.failures;
      }
    }
    return runs == 0 ? 0.0
                     : static_cast<double>(failures) /
                           static_cast<double>(runs);
  };

  const double early_on = window_rate(with_fixes, 1, 3);
  const double late_on = window_rate(with_fixes, 25, 30);
  const double late_off = window_rate(without_fixes, 25, 30);
  std::printf("\nfailure rate, days 1-3 (before fixes): %.3f%%\n",
              early_on * 100);
  std::printf("failure rate, days 25-30, loop ON:     %.3f%%\n",
              late_on * 100);
  std::printf("failure rate, days 25-30, loop OFF:    %.3f%%\n",
              late_off * 100);
  const double reduction = late_on > 0 ? late_off / late_on : 1e9;
  if (late_on > 0) {
    std::printf("reduction attributable to the loop: %.1fx %s\n", reduction,
                reduction >= 10.0 ? "(order-of-magnitude REPRODUCED)" : "");
  } else {
    std::printf("reduction attributable to the loop: infinite — zero "
                "failures once fixes propagated (order-of-magnitude shape "
                "REPRODUCED)\n");
  }

  json.add("fixable_corpus", "late_failure_rate_pct_loop_on",
           late_on * 100.0, late_off * 100.0);
  json.add("fixable_corpus", "early_failure_rate_pct", early_on * 100.0);

  // Ablation: staged (canary) rollout — a 10% canary for 3 days before the
  // full fleet gets each fix. Reliability converges a few days later but to
  // the same floor; the canary bounds the blast radius of a bad fix.
  {
    WorldConfig config;
    config.pods_per_program = 60;
    config.days = 30;
    config.mean_runs_per_day = 5.0;
    config.seed = 3;
    config.canary_fraction = 0.1;
    config.canary_days = 3;
    World world(fixable_corpus(), config);
    world.run();
    const double canary_late = window_rate(world.history(), 25, 30);
    double first_clean_day = 0;
    for (const auto& d : world.history()) {
      if (d.failures == 0 && first_clean_day == 0 && d.day > 1) {
        first_clean_day = static_cast<double>(d.day);
      }
    }
    std::printf("\n## ablation: 10%% canary, 3-day bake before full rollout\n");
    std::printf("failure rate days 25-30: %.3f%%; first clean day: %.0f "
                "(instant rollout: day 2)\n",
                canary_late * 100, first_clean_day);
  }

  // The residue: add the schedule-dependent race, which the hive refuses
  // to auto-fix (repair lab). Its failures persist by design.
  std::printf("\n## full corpus including the un-auto-fixable schedule "
              "race\n");
  const auto full_on = deploy(standard_corpus(), true);
  const double full_early = window_rate(full_on, 1, 3);
  const double full_late = window_rate(full_on, 25, 30);
  std::printf("failure rate days 1-3: %.3f%%  days 25-30: %.3f%% — the "
              "remaining failures are the schedule race awaiting a human "
              "fix (repair-lab entries: see fleet_simulation example)\n",
              full_early * 100, full_late * 100);
  json.add("full_corpus", "late_failure_rate_pct", full_late * 100.0,
           full_early * 100.0);
  return json.write() ? 0 : 1;
}
