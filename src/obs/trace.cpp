#include "obs/trace.h"

#include <cstring>

namespace softborg::obs {

namespace detail {
std::atomic<bool> g_tracing_enabled{false};
}

void set_tracing_enabled(bool on) {
  detail::g_tracing_enabled.store(on, std::memory_order_relaxed);
}

bool has_hop(TraceContext ctx, Hop hop) {
  const auto code = static_cast<std::uint16_t>(hop);
  for (std::uint16_t path = ctx.hop_path; path != 0; path >>= 4) {
    if ((path & 0xf) == code) return true;
  }
  return false;
}

namespace {

const char* hop_name(std::uint16_t code) {
  switch (static_cast<Hop>(code)) {
    case Hop::kNone:
      return "?";
    case Hop::kPod:
      return "pod";
    case Hop::kRouter:
      return "router";
    case Hop::kShard:
      return "shard";
    case Hop::kMerge:
      return "merge";
    case Hop::kProof:
      return "proof";
    case Hop::kExport:
      return "export";
  }
  return "?";
}

}  // namespace

const char* hop_path_str(std::uint16_t hop_path, char* buf) {
  // Oldest hop lives in the highest occupied nibble; walk top-down.
  char* out = buf;
  bool first = true;
  for (int shift = 12; shift >= 0; shift -= 4) {
    const std::uint16_t code = (hop_path >> shift) & 0xf;
    if (code == 0) continue;
    if (!first) *out++ = '>';
    first = false;
    const char* name = hop_name(code);
    const std::size_t len = std::strlen(name);
    std::memcpy(out, name, len);
    out += len;
  }
  *out = '\0';
  return buf;
}

std::uint64_t causal_trace_id(std::uint64_t trace_id,
                              std::uint64_t program_id) {
  // splitmix64 finalizer over the pair; both sides of every socket compute
  // this from the wire header alone, so the id needs no coordination.
  std::uint64_t x = trace_id * 0x9e3779b97f4a7c15ULL + program_id;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

namespace {
thread_local TraceContext tls_context;
}

TraceContext current_context() { return tls_context; }

ScopedTraceContext::ScopedTraceContext(TraceContext ctx)
    : saved_(tls_context) {
  tls_context = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { tls_context = saved_; }

}  // namespace softborg::obs
