
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minivm/builder.cpp" "src/minivm/CMakeFiles/sb_minivm.dir/builder.cpp.o" "gcc" "src/minivm/CMakeFiles/sb_minivm.dir/builder.cpp.o.d"
  "/root/repo/src/minivm/corpus.cpp" "src/minivm/CMakeFiles/sb_minivm.dir/corpus.cpp.o" "gcc" "src/minivm/CMakeFiles/sb_minivm.dir/corpus.cpp.o.d"
  "/root/repo/src/minivm/disasm.cpp" "src/minivm/CMakeFiles/sb_minivm.dir/disasm.cpp.o" "gcc" "src/minivm/CMakeFiles/sb_minivm.dir/disasm.cpp.o.d"
  "/root/repo/src/minivm/env.cpp" "src/minivm/CMakeFiles/sb_minivm.dir/env.cpp.o" "gcc" "src/minivm/CMakeFiles/sb_minivm.dir/env.cpp.o.d"
  "/root/repo/src/minivm/interp.cpp" "src/minivm/CMakeFiles/sb_minivm.dir/interp.cpp.o" "gcc" "src/minivm/CMakeFiles/sb_minivm.dir/interp.cpp.o.d"
  "/root/repo/src/minivm/program.cpp" "src/minivm/CMakeFiles/sb_minivm.dir/program.cpp.o" "gcc" "src/minivm/CMakeFiles/sb_minivm.dir/program.cpp.o.d"
  "/root/repo/src/minivm/random_program.cpp" "src/minivm/CMakeFiles/sb_minivm.dir/random_program.cpp.o" "gcc" "src/minivm/CMakeFiles/sb_minivm.dir/random_program.cpp.o.d"
  "/root/repo/src/minivm/replay.cpp" "src/minivm/CMakeFiles/sb_minivm.dir/replay.cpp.o" "gcc" "src/minivm/CMakeFiles/sb_minivm.dir/replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sb_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
