#include "privacy/entropy.h"

#include <cmath>
#include <unordered_map>

namespace softborg {

PopulationPrivacy measure_population(const std::vector<Trace>& traces) {
  PopulationPrivacy out;
  out.traces = traces.size();
  if (traces.empty()) return out;

  std::unordered_map<std::uint64_t, std::size_t> counts;
  double total_bits = 0;
  for (const auto& t : traces) {
    counts[t.branch_bits.hash()]++;
    total_bits += static_cast<double>(t.branch_bits.size());
  }
  out.distinct_paths = counts.size();
  out.mean_bits_per_trace = total_bits / static_cast<double>(traces.size());

  const double n = static_cast<double>(traces.size());
  std::size_t unique = 0;
  for (const auto& [key, count] : counts) {
    const double p = static_cast<double>(count) / n;
    out.path_entropy_bits -= p * std::log2(p);
    if (count == 1) unique++;
  }
  out.unique_fraction = static_cast<double>(unique) / n;
  return out;
}

}  // namespace softborg
