// Symbolic execution of MiniVM programs (paper §3.3 and §4).
//
// The hive uses this engine for everything the pods' natural executions
// cannot provide:
//   * gap analysis — is the unexplored direction of a tree frontier node
//     feasible at all? If not, the subtree is provably complete.
//   * guidance — a model (concrete inputs / syscall faults) that drives a
//     pod down a chosen unexplored path.
//   * fix synthesis — the path constraint of a recorded crash trace, from
//     which input-predicate guards are derived.
//   * relaxed execution consistency (S2E-style): exploration can start at a
//     "unit" entry pc with chosen registers made symbolic, over-approximating
//     the unit's feasible behaviours without executing its callers.
//
// The engine mirrors the interpreter's semantics exactly (wrapping
// arithmetic, taint <-> symbolic correspondence): a branch condition that
// constant-folds is precisely a branch the pod did not record.
//
// Scope: symbolic exploration is single-threaded (thread interleavings are
// covered by schedule guidance + the deadlock detector instead).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "minivm/corpus.h"
#include "minivm/env.h"
#include "minivm/interp.h"
#include "minivm/program.h"
#include "sym/csolver.h"
#include "sym/expr.h"

namespace softborg {

class SolverCache;

struct SymDecision {
  std::uint32_t site = 0;
  bool taken = false;

  auto operator<=>(const SymDecision&) const = default;
};

enum class PathTerminal : std::uint8_t {
  kOk = 0,          // reached kHalt
  kCrash = 1,       // feasible crash
  kDeadlock = 2,    // single-thread self-deadlock
  kBudget = 3,      // per-path step budget exhausted (path incomplete)
};

struct SymPath {
  std::vector<SymDecision> decisions;  // input-dependent branches, in order
  PathConstraint constraints;
  PathTerminal terminal = PathTerminal::kOk;
  std::optional<CrashInfo> crash;
  Assignment model;  // a witness satisfying `constraints`
  // True iff `model` was confirmed against `constraints` (a solver budget
  // exhaustion can leave a path with an unverified, possibly stale model).
  bool model_verified = false;
  std::vector<VarDomain> unknown_domains;  // per syscall ordinal on this path
  std::uint64_t steps = 0;
};

struct ExploreOptions {
  std::vector<VarDomain> input_domains;
  std::size_t max_paths = 4096;
  std::uint64_t max_steps_per_path = 20'000;
  std::uint64_t max_total_steps = 5'000'000;
  // The unified solver budget (see SolverOptions in csolver.h for the
  // precedence rules shared with ProofBudget and GuidancePlannerConfig).
  SolverOptions solver;
  bool check_crashes = true;
  const EnvModel* env = nullptr;  // defaults to default_env()
  // Optional solver-result recycling cache; feasibility checks route
  // through it when set (sym/solver_cache.h). Not owned, not thread-safe —
  // concurrent executors need distinct caches.
  SolverCache* solver_cache = nullptr;
};

struct ExploreStats {
  std::uint64_t paths_completed = 0;
  std::uint64_t crash_paths = 0;
  std::uint64_t solver_calls = 0;
  std::uint64_t solver_sat = 0;
  std::uint64_t solver_unsat = 0;
  std::uint64_t solver_unknown = 0;
  // Of solver_calls, how many the recycling cache answered without solving
  // (always 0 when ExploreOptions::solver_cache is null).
  std::uint64_t solver_cache_hits = 0;      // exact canonical-key hits
  std::uint64_t solver_unsat_subsumed = 0;  // UNSAT via cached-subset proof
  std::uint64_t solver_models_reused = 0;   // SAT via recycled witness
  std::uint64_t infeasible_pruned = 0;
  std::uint64_t total_steps = 0;
  // True iff exploration covered every feasible path with no budget cut and
  // no undecided solver call — the precondition for a completeness proof.
  bool complete = true;
};

class SymbolicExecutor {
 public:
  SymbolicExecutor(const Program& program, ExploreOptions options);

  // Full exploration from program entry under system-level consistency:
  // globals start at 0, inputs symbolic over their domains.
  std::vector<SymPath> explore();

  // Relaxed (unit-level) consistency: start at `entry_pc`; each register in
  // `params` is symbolic over its domain; all other registers and globals
  // are 0. Over-approximates the unit's in-system behaviours (S2E, §4).
  std::vector<SymPath> explore_unit(
      std::uint32_t entry_pc,
      const std::vector<std::pair<Reg, VarDomain>>& params);

  // Explores only the subtree under a decision prefix (cooperative workers
  // and frontier gap-filling): the first prefix.size() input-dependent
  // branches are forced instead of forked.
  std::vector<SymPath> explore_subtree(const std::vector<SymDecision>& prefix);

  // Follows a complete recorded decision stream (from replay_trace) and
  // returns that single path's constraint. `total_steps`/`crash` come from
  // the trace and pin down the crash occurrence, as in replay.
  std::optional<SymPath> path_for_decisions(
      const std::vector<SymDecision>& decisions, std::uint64_t total_steps,
      const std::optional<CrashInfo>& crash);

  const ExploreStats& stats() const { return stats_; }

 private:
  struct State;
  class Impl;

  const Program& program_;
  ExploreOptions options_;
  ExploreStats stats_;
};

// Convenience: input domains of a corpus entry as solver VarDomains.
std::vector<VarDomain> domains_of(const CorpusEntry& entry);

}  // namespace softborg
