// Adaptive control plane (hive/adapt.h): ledger estimation and persistence,
// the allocation rule's determinism and optimism, plan_schedules /
// plan_frontier determinism (the property the adaptive rebalancer leans
// on), coop outcome surfacing, ledger-seeded coop priors, shard load
// shedding, and the adaptive kill-and-resume differential.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/softborg.h"
#include "hive/adapt.h"
#include "hive/report.h"

namespace softborg {
namespace {

namespace fs = std::filesystem;

ProgramId pid(std::uint64_t v) { return ProgramId{v}; }

// --- satellite: the 0-means-default frontier budget rule ---------------------

TEST(GuidanceConfig, FrontierBudgetDefaultResolvedInOnePlace) {
  GuidancePlannerConfig config;  // frontier_budget = 0
  EXPECT_EQ(config.effective_frontier_budget(5), 10u);
  EXPECT_EQ(config.effective_frontier_budget(0), 0u);
  config.frontier_budget = 7;
  EXPECT_EQ(config.effective_frontier_budget(5), 7u);
}

// --- YieldLedger -------------------------------------------------------------

TEST(YieldLedger, FirstObservationOnlyBaselines) {
  YieldLedger ledger;
  ledger.note_work(pid(1), 4);
  ledger.observe_program(pid(1), 10, 6, false);
  const auto* e = ledger.estimate(pid(1));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->observations, 0u);  // first sighting anchors, never scores
  EXPECT_DOUBLE_EQ(e->ret, 0.0);
  EXPECT_DOUBLE_EQ(e->opportunity, 6.0);
}

TEST(YieldLedger, ReturnIsGainedPathsPerUnitOfWork) {
  AdaptConfig config;
  config.ewma_alpha = 1.0;  // estimate == latest observation
  YieldLedger ledger(config);
  ledger.observe_program(pid(1), 10, 5, false);  // baseline
  ledger.note_work(pid(1), 4);
  ledger.observe_program(pid(1), 18, 3, false);  // +8 paths for 4 units
  const auto* e = ledger.estimate(pid(1));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->observations, 1u);
  EXPECT_DOUBLE_EQ(e->ret, 2.0);
  EXPECT_DOUBLE_EQ(e->opportunity, 3.0);
  // No work noted: the day's gain divides by the 1-unit floor.
  ledger.observe_program(pid(1), 21, 0, true);
  EXPECT_DOUBLE_EQ(ledger.estimate(pid(1))->ret, 3.0);
  EXPECT_TRUE(ledger.estimate(pid(1))->proven);
}

TEST(YieldLedger, PersistenceRoundTripsEveryField) {
  YieldLedger ledger;
  ledger.observe_program(pid(3), 5, 2, false);
  ledger.note_work(pid(3), 2);
  ledger.observe_program(pid(3), 9, 1, false);
  ledger.observe_program(pid(7), 100, 0, true);
  ledger.observe_equity(pid(3), YieldLedger::equity_key(4, true), 12.5, 3);
  ledger.observe_shard_pump(0, 0.002);
  ledger.observe_shard_pump(2, 0.004);
  IngestStats ing;
  ing.replay_cache_hits = 8;
  ing.replay_cache_misses = 2;
  Hive::ProofClosureStats ps;
  ps.solver_calls = 10;
  ps.solver_cache_hits = 4;
  ledger.observe_hive(ing, ps);

  Bytes bytes;
  ledger.save_state(bytes);
  YieldLedger restored;
  StateReader r(bytes);
  ASSERT_TRUE(restored.load_state(r));
  ASSERT_TRUE(r.done());
  EXPECT_TRUE(restored.state_equals(ledger));
  // The restored ledger keeps estimating identically (the delta baselines
  // survived, so the next observe_hive sees a delta, not the cumulative).
  YieldLedger copy = ledger;
  ing.replay_cache_hits = 10;
  restored.observe_hive(ing, ps);
  copy.observe_hive(ing, ps);
  EXPECT_DOUBLE_EQ(restored.replay_recycle_rate(),
                   copy.replay_recycle_rate());

  // Truncated payloads are corruption, not a crash.
  Bytes truncated(bytes.begin(), bytes.begin() + bytes.size() / 2);
  YieldLedger victim;
  StateReader rt(truncated);
  EXPECT_FALSE(victim.load_state(rt) && rt.done());
}

TEST(YieldLedger, LoadRejectsUnsortedProgramKeys) {
  // Two entries with the same key: legal varints, illegal ledger.
  Bytes bytes;
  put_varint(bytes, 2);  // program count
  for (int i = 0; i < 2; ++i) {
    put_varint(bytes, 5);  // duplicate key
    put_f64(bytes, 1.0);
    put_f64(bytes, 0.0);
    put_f64(bytes, 2.0);
    put_varint(bytes, 1);
    put_bool(bytes, false);
    put_varint(bytes, 3);
    put_varint(bytes, 0);
    put_bool(bytes, true);
  }
  YieldLedger ledger;
  StateReader r(bytes);
  EXPECT_FALSE(ledger.load_state(r));
}

TEST(YieldLedger, MetricsDeltaFeedsRecycleRates) {
  AdaptConfig config;
  config.ewma_alpha = 1.0;
  YieldLedger ledger(config);
  obs::MetricsSnapshot delta;
  delta.counters = {{"hive.replay.cache_hits_total", 8},
                    {"hive.replay.cache_misses_total", 2},
                    {"solver.calls_total", 10},
                    {"solver.exact_hits_total", 3},
                    {"solver.models_reused_total", 1},
                    {"solver.unsat_subsumed_total", 2}};
  ledger.ingest_metrics_delta(delta);
  EXPECT_DOUBLE_EQ(ledger.replay_recycle_rate(), 0.8);
  EXPECT_DOUBLE_EQ(ledger.solver_recycle_rate(), 0.6);
  // An empty delta must not disturb the estimates (no divide-by-zero day).
  ledger.ingest_metrics_delta(obs::MetricsSnapshot{});
  EXPECT_DOUBLE_EQ(ledger.replay_recycle_rate(), 0.8);
}

// --- AdaptivePlanner ---------------------------------------------------------

TEST(AdaptivePlanner, AllocateIsExactAndDeterministic) {
  YieldLedger ledger;
  AdaptivePlanner planner;
  const std::vector<ProgramId> targets = {pid(1), pid(2), pid(3)};

  // Cold ledger: every target unknown, so the split degrades to uniform.
  const auto cold = planner.allocate(9, targets, ledger);
  EXPECT_EQ(cold, (std::vector<std::size_t>{3, 3, 3}));

  // Teach the ledger that program 2 pays and program 1 is saturated.
  ledger.observe_program(pid(1), 8, 0, true);
  ledger.observe_program(pid(2), 0, 50, false);
  ledger.note_work(pid(2), 1);
  ledger.observe_program(pid(2), 20, 40, false);
  const auto warm = planner.allocate(10, targets, ledger);
  EXPECT_EQ(warm[0], 0u);  // saturated: proven and nothing left to open
  EXPECT_GT(warm[1], warm[2]);
  EXPECT_EQ(warm[0] + warm[1] + warm[2], 10u);
  EXPECT_EQ(planner.allocate(10, targets, ledger), warm);  // pure function
}

TEST(AdaptivePlanner, OptimismFundsTheUnexplored) {
  AdaptConfig config;
  config.ewma_alpha = 1.0;
  YieldLedger ledger(config);
  AdaptivePlanner planner(config);
  // Program 1: observed repeatedly, tiny return. Program 2: never seen.
  ledger.observe_program(pid(1), 0, 10, false);
  for (int day = 1; day <= 8; ++day) {
    ledger.note_work(pid(1), 10);
    ledger.observe_program(pid(1), static_cast<std::size_t>(day), 10, false);
  }
  EXPECT_GT(planner.score(ledger, pid(2)), planner.score(ledger, pid(1)));
  const auto order = planner.rank({pid(1), pid(2)}, ledger);
  EXPECT_EQ(order[0], 1u);
}

TEST(AdaptivePlanner, ShardScaleShedsHotShards) {
  YieldLedger ledger;
  AdaptivePlanner planner;
  EXPECT_DOUBLE_EQ(planner.shard_scale(ledger, 0), 1.0);  // no samples yet
  ledger.observe_shard_pump(0, 0.010);  // hot
  ledger.observe_shard_pump(1, 0.002);  // cold
  const double hot = planner.shard_scale(ledger, 0);
  const double cold = planner.shard_scale(ledger, 1);
  EXPECT_LT(hot, 1.0);
  EXPECT_GT(cold, 1.0);
  EXPECT_GE(hot, 0.5);
  EXPECT_LE(cold, 2.0);
}

// --- satellite: planner determinism ------------------------------------------

std::vector<Bytes> encoded_plan(const std::vector<GuidanceDirective>& plan) {
  std::vector<Bytes> out;
  out.reserve(plan.size());
  for (const auto& d : plan) out.push_back(encode_guidance(d));
  return out;
}

TEST(GuidancePlanner, PlanSchedulesIsDeterministic) {
  const auto entry = make_bank_transfer();
  GuidancePlanner planner;
  Rng rng_a(42), rng_b(42);
  const auto a = encoded_plan(planner.plan_schedules(entry, 6, rng_a));
  const auto b = encoded_plan(planner.plan_schedules(entry, 6, rng_b));
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // byte-identical directives for identical (entry, n, rng)
  // A different seed must actually steer the plans (the rng is load-bearing).
  Rng rng_c(43);
  EXPECT_NE(a, encoded_plan(planner.plan_schedules(entry, 6, rng_c)));
}

TEST(GuidancePlanner, PlanFrontierIsDeterministicAcrossPlanners) {
  const auto entry = make_config_space(4);
  ExecTree tree(entry.program.id);
  ExecConfig cfg;
  cfg.inputs = {0, 0, 0, 0};
  cfg.collect_branch_events = true;
  const auto live = execute(entry.program, cfg);
  std::vector<SymDecision> ds;
  for (const auto& ev : live.branch_events) {
    if (ev.tainted) ds.push_back({ev.site, ev.taken});
  }
  tree.add_path(ds, Outcome::kOk);

  GuidancePlanner a, b;
  const auto pa = encoded_plan(a.plan_frontier(entry, tree, 4));
  const auto pb = encoded_plan(b.plan_frontier(entry, tree, 4));
  ASSERT_FALSE(pa.empty());
  EXPECT_EQ(pa, pb);
}

// --- coop integration --------------------------------------------------------

TEST(CoopAdapt, LedgerSeedsPortfolioAndGetsCostsBack) {
  const auto entry = make_skewed_workload(5);
  CoopConfig config;
  config.strategy = PartitionStrategy::kPortfolio;
  config.num_workers = 4;
  config.seed = 9;

  YieldLedger ledger;
  config.yield = &ledger;
  const CoopResult first = run_cooperative_exploration(entry, config);
  EXPECT_TRUE(first.complete);
  EXPECT_EQ(first.strategy, PartitionStrategy::kPortfolio);
  // The run wrote observed per-subtree costs back: both top-level equities
  // of the skewed workload are now known.
  int known = 0;
  for (const bool taken : {false, true}) {
    const auto* eq =
        ledger.equity(entry.program.id, YieldLedger::equity_key(0, taken));
    if (eq != nullptr && eq->units > 0) known++;
  }
  EXPECT_GT(known, 0);

  // Determinism: two runs from byte-identical ledgers agree exactly.
  Bytes state;
  ledger.save_state(state);
  YieldLedger la, lb;
  StateReader ra(state), rb(state);
  ASSERT_TRUE(la.load_state(ra));
  ASSERT_TRUE(lb.load_state(rb));
  CoopConfig ca = config, cb = config;
  ca.yield = &la;
  cb.yield = &lb;
  const CoopResult a = run_cooperative_exploration(entry, ca);
  const CoopResult b = run_cooperative_exploration(entry, cb);
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.useful_steps, b.useful_steps);
  EXPECT_EQ(a.wasted_steps, b.wasted_steps);
  EXPECT_EQ(a.idle_ticks, b.idle_ticks);
  EXPECT_TRUE(la.state_equals(lb));
}

// --- satellite: coop outcomes surfaced ---------------------------------------

TEST(CoopAdapt, OutcomesSurfaceInDayMetricsAndReport) {
  WorldConfig config;
  config.pods_per_program = 2;
  config.days = 2;
  config.mean_runs_per_day = 1.0;
  config.coop_programs_per_day = 1;
  config.coop.num_workers = 2;
  config.seed = 5;
  std::vector<CorpusEntry> corpus;
  corpus.push_back(make_config_space(3));
  World world(std::move(corpus), config);
  world.run();

  std::uint64_t runs = 0, by_strategy = 0;
  for (const auto& d : world.history()) {
    runs += d.coop_runs;
    for (const auto n : d.coop_runs_by_strategy) by_strategy += n;
  }
  EXPECT_EQ(runs, 2u);  // one run per day
  EXPECT_EQ(by_strategy, runs);

  const auto& stats =
      world.hive().coop_stats()[static_cast<std::size_t>(config.coop.strategy)];
  EXPECT_EQ(stats.runs, 2u);
  EXPECT_GT(stats.useful_steps, 0u);

  const std::string report = hive_status_report(world.hive());
  EXPECT_NE(report.find("coop[dynamic]"), std::string::npos) << report;
  EXPECT_NE(report.find("idle ticks"), std::string::npos) << report;
}

TEST(CoopAdapt, ReportSaysSoWhenNoCoopRan) {
  std::vector<CorpusEntry> corpus;
  corpus.push_back(make_config_space(3));
  Hive hive(&corpus);
  const std::string report = hive_status_report(hive);
  EXPECT_NE(report.find("coop: no cooperative runs"), std::string::npos);
}

// --- adaptive world ----------------------------------------------------------

class AdaptWorldTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("sb_adapt_" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::vector<CorpusEntry> small_corpus() {
    std::vector<CorpusEntry> corpus;
    corpus.push_back(make_config_space(3));
    corpus.push_back(make_skewed_workload(4));
    return corpus;
  }

  static WorldConfig adaptive_config() {
    WorldConfig config;
    config.pods_per_program = 4;
    config.days = 6;
    config.mean_runs_per_day = 2.0;
    config.guidance_per_program_per_day = 2;
    config.proof_programs_per_day = 1;
    config.coop_programs_per_day = 1;
    config.coop.num_workers = 2;
    config.adapt.static_plan = false;
    config.seed = 31;
    return config;
  }

  std::string dir_;
};

TEST_F(AdaptWorldTest, LedgerLearnsFromTheRun) {
  World world(small_corpus(), adaptive_config());
  world.run();
  for (const auto& entry : world.corpus()) {
    const auto* e = world.yield_ledger().estimate(entry.program.id);
    ASSERT_NE(e, nullptr) << entry.program.name;
    EXPECT_GT(e->observations, 0u) << entry.program.name;
  }
  std::uint64_t coop_runs = 0;
  for (const auto& d : world.history()) coop_runs += d.coop_runs;
  EXPECT_GT(coop_runs, 0u);
}

TEST_F(AdaptWorldTest, AdaptiveKillAndResumeIsBitIdentical) {
  const WorldConfig config = adaptive_config();

  World cold(small_corpus(), config);
  for (std::uint64_t d = 0; d < config.days; ++d) cold.step_day();

  {
    World doomed(small_corpus(), config);
    for (int d = 0; d < 3; ++d) doomed.step_day();
    std::string err;
    ASSERT_TRUE(doomed.save_snapshot(dir_, &err)) << err;
  }

  World resumed(small_corpus(), config);
  std::string err;
  ASSERT_TRUE(resumed.resume_from_snapshot(dir_, &err)) << err;
  EXPECT_EQ(resumed.day(), 3u);
  while (resumed.day() < config.days) resumed.step_day();

  ASSERT_EQ(cold.history().size(), resumed.history().size());
  for (std::size_t i = 0; i < cold.history().size(); ++i) {
    EXPECT_EQ(cold.history()[i], resumed.history()[i]) << "day index " << i;
  }
  // The learned allocation itself survived the kill — byte for byte. (Only
  // the planning state: the advisory replay-recycle EWMA legitimately
  // differs, because the replay cache is ephemeral and a resumed hive
  // re-replays cold. Nothing the planner reads can diverge.)
  EXPECT_TRUE(
      cold.yield_ledger().planning_state_equals(resumed.yield_ledger()));
  EXPECT_EQ(cold.hive().coop_stats(), resumed.hive().coop_stats());
}

TEST_F(AdaptWorldTest, StaticPlanStillFingerprintsAdaptKnobs) {
  // Flipping static_plan changes behavior, so a snapshot from one mode must
  // refuse to resume into the other.
  WorldConfig config = adaptive_config();
  World saver(small_corpus(), config);
  saver.step_day();
  ASSERT_TRUE(saver.save_snapshot(dir_));

  WorldConfig other = config;
  other.adapt.static_plan = true;
  World victim(small_corpus(), other);
  std::string err;
  EXPECT_FALSE(victim.resume_from_snapshot(dir_, &err));
  EXPECT_NE(err.find("fingerprint"), std::string::npos) << err;
}

}  // namespace
}  // namespace softborg
