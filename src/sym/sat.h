// SAT solver interface and the three concrete engines of the portfolio.
//
// The paper's portfolio claim (§4) needs solvers whose per-instance costs
// are *complementary*, so these are genuinely different algorithms:
//   * DpllSolver / kActivity  — DPLL with unit propagation and a dynamic
//     activity (VSIDS-flavoured) decision heuristic.
//   * DpllSolver / kNegativeStatic — DPLL with a static variable order and
//     negative-first polarity (good on structured/UNSAT instances, bad on
//     many random SAT ones).
//   * WalkSatSolver — stochastic local search (often instantly lucky on
//     satisfiable random instances, hopeless on UNSAT ones).
//
// All engines are budgeted and deterministic; cost is measured in abstract
// "ticks" (propagations/flips) so simulated portfolio runs are exactly
// reproducible and comparable.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sym/cnf.h"

namespace softborg {

enum class SatStatus : std::uint8_t { kSat, kUnsat, kUnknown };

const char* sat_status_name(SatStatus s);

struct SatOutcome {
  SatStatus status = SatStatus::kUnknown;
  std::vector<bool> model;   // valid iff kSat
  std::uint64_t ticks = 0;   // abstract work performed
};

class SatSolver {
 public:
  virtual ~SatSolver() = default;

  // Solves within `budget_ticks`; kUnknown on exhaustion. `cancel`, when
  // non-null, is polled so a portfolio can stop losers early.
  virtual SatOutcome solve(const Cnf& cnf, std::uint64_t budget_ticks,
                           const std::atomic<bool>* cancel = nullptr) = 0;

  virtual std::string name() const = 0;
};

enum class DpllHeuristic : std::uint8_t {
  kActivity,        // dynamic activity, positive-first
  kNegativeStatic,  // static order, negative-first
};

std::unique_ptr<SatSolver> make_dpll_solver(DpllHeuristic heuristic);
std::unique_ptr<SatSolver> make_walksat_solver(std::uint64_t seed,
                                               double noise = 0.5);

// The standard 3-solver portfolio from the paper's claim.
std::vector<std::unique_ptr<SatSolver>> make_standard_portfolio(
    std::uint64_t seed = 1);

}  // namespace softborg
