// Fuzz hardening for the distributed hive's frame decoder (ISSUE 9
// satellite): the decoder faces raw socket bytes from potentially corrupt,
// truncated, or hostile peers, and must reject-or-deliver-valid — never
// crash, never allocate beyond the declared payload bound, never
// resynchronize a poisoned stream.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dist/frame.h"

namespace softborg::dist {
namespace {

Bytes some_payload(std::size_t n, std::uint8_t seed) {
  Bytes p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>(seed + i * 31);
  }
  return p;
}

TEST(Frame, RoundTripsTypesCreditsAndPayloads) {
  Bytes stream;
  encode_frame(stream, 1, 0, some_payload(100, 7));
  encode_frame(stream, 9, 512, Bytes{});  // bare credit grant, header-only
  encode_frame(stream, 255, 0xffff, some_payload(1, 0));
  FrameDecoder d;
  d.feed(stream.data(), stream.size());
  auto f1 = d.next();
  auto f2 = d.next();
  auto f3 = d.next();
  ASSERT_TRUE(f1 && f2 && f3);
  EXPECT_FALSE(d.next().has_value());
  EXPECT_FALSE(d.failed());
  EXPECT_EQ(f1->type, 1u);
  EXPECT_EQ(f1->credit, 0u);
  EXPECT_EQ(f1->payload, some_payload(100, 7));
  EXPECT_EQ(f2->type, 9u);
  EXPECT_EQ(f2->credit, 512u);
  EXPECT_TRUE(f2->payload.empty());
  EXPECT_EQ(f3->type, 255u);
  EXPECT_EQ(f3->credit, 0xffffu);
  EXPECT_EQ(f3->payload, some_payload(1, 0));
  EXPECT_EQ(d.buffered(), 0u);
}

TEST(Frame, TruncationAtEveryBoundaryWaitsThenDecodes) {
  Bytes wire;
  encode_frame(wire, 3, 17, some_payload(64, 3));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder d;
    d.feed(wire.data(), cut);
    // A prefix is never an error — just an incomplete frame.
    EXPECT_FALSE(d.next().has_value()) << "cut " << cut;
    EXPECT_FALSE(d.failed()) << "cut " << cut;
    d.feed(wire.data() + cut, wire.size() - cut);
    const auto f = d.next();
    ASSERT_TRUE(f.has_value()) << "cut " << cut;
    EXPECT_EQ(f->type, 3u);
    EXPECT_EQ(f->payload, some_payload(64, 3));
  }
}

TEST(Frame, EveryBitFlipRejectsOrDeliversValid) {
  Bytes wire;
  encode_frame(wire, 1, 2, some_payload(48, 9));
  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    Bytes flipped = wire;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    FrameDecoder d;
    d.feed(flipped.data(), flipped.size());
    std::size_t frames = 0;
    while (const auto f = d.next()) {
      frames++;
      // Anything delivered must respect the structural bounds.
      EXPECT_LE(f->payload.size(), kMaxFramePayload);
      EXPECT_LE(f->type, 0xffu);
      EXPECT_LE(f->credit, 0xffffu);
    }
    // A flip lands in exactly one frame: at most one can come out, and the
    // decoder never buffers beyond the one (bounded) frame in progress.
    EXPECT_LE(frames, 1u) << "bit " << bit;
    EXPECT_LE(d.buffered(), kFrameHeaderSize + kMaxFramePayload);
    // Payload and checksum flips must be caught (the checksum covers the
    // body; header flips may legitimately yield a different valid frame —
    // type/credit are not covered — or a reject).
    const std::size_t byte = bit / 8;
    if (byte >= kFrameHeaderSize || byte == 12 || byte == 13 || byte == 14 ||
        byte == 15) {
      EXPECT_TRUE(d.failed()) << "bit " << bit;
      EXPECT_EQ(frames, 0u) << "bit " << bit;
    }
  }
}

TEST(Frame, OversizedLengthRejectsBeforeAllocating) {
  // A hostile length field must be rejected from the 16 header bytes alone
  // — no payload is ever buffered for it.
  for (const std::uint64_t claimed :
       {static_cast<std::uint64_t>(kMaxFramePayload) + 1,
        std::uint64_t{0xffffffff}}) {
    Bytes header = {'S', 'B', 'D', '1', kFrameVersion, 1, 0, 0};
    for (int shift = 0; shift < 32; shift += 8) {
      header.push_back(static_cast<std::uint8_t>(claimed >> shift));
    }
    header.insert(header.end(), {0, 0, 0, 0});  // checksum, never reached
    ASSERT_EQ(header.size(), kFrameHeaderSize);
    FrameDecoder d;
    d.feed(header.data(), header.size());
    EXPECT_FALSE(d.next().has_value());
    EXPECT_TRUE(d.failed());
    EXPECT_LE(d.buffered(), kFrameHeaderSize);
    // Latched: feeding a perfectly good frame afterwards yields nothing.
    Bytes good;
    encode_frame(good, 1, 0, some_payload(8, 1));
    d.feed(good.data(), good.size());
    EXPECT_FALSE(d.next().has_value());
    EXPECT_TRUE(d.failed());
  }
}

TEST(Frame, BadMagicAndVersionLatch) {
  Bytes wire;
  encode_frame(wire, 1, 0, some_payload(4, 2));
  {
    Bytes bad = wire;
    bad[0] = 'X';
    FrameDecoder d;
    d.feed(bad.data(), bad.size());
    EXPECT_FALSE(d.next().has_value());
    EXPECT_TRUE(d.failed());
  }
  {
    Bytes bad = wire;
    bad[4] = kFrameVersion + 1;
    FrameDecoder d;
    d.feed(bad.data(), bad.size());
    EXPECT_FALSE(d.next().has_value());
    EXPECT_TRUE(d.failed());
  }
}

TEST(Frame, RandomChopReassemblesIdentically) {
  // The kernel hands the decoder arbitrary read sizes; every chop of the
  // same stream must yield the same frame sequence.
  Rng rng(0xfeed);
  Bytes stream;
  std::vector<Bytes> payloads;
  for (int i = 0; i < 50; ++i) {
    payloads.push_back(some_payload(rng.next_below(300),
                                    static_cast<std::uint8_t>(i)));
    encode_frame(stream, 1 + (i % 14), i % 7 == 0 ? i : 0, payloads.back());
  }
  for (int trial = 0; trial < 20; ++trial) {
    FrameDecoder d;
    std::size_t fed = 0, got = 0;
    while (fed < stream.size() || true) {
      while (const auto f = d.next()) {
        ASSERT_LT(got, payloads.size());
        EXPECT_EQ(f->payload, payloads[got]);
        got++;
      }
      if (fed >= stream.size()) break;
      const std::size_t n =
          std::min<std::size_t>(1 + rng.next_below(97), stream.size() - fed);
      d.feed(stream.data() + fed, n);
      fed += n;
    }
    EXPECT_EQ(got, payloads.size()) << "trial " << trial;
    EXPECT_FALSE(d.failed());
    EXPECT_EQ(d.buffered(), 0u);
  }
}

TEST(Frame, RandomGarbageNeverCrashesAndStaysBounded) {
  Rng rng(0xdead);
  for (int trial = 0; trial < 200; ++trial) {
    FrameDecoder d;
    Bytes junk(rng.next_below(2048));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_below(256));
    d.feed(junk.data(), junk.size());
    while (const auto f = d.next()) {
      EXPECT_LE(f->payload.size(), kMaxFramePayload);
    }
    EXPECT_LE(d.buffered(), kFrameHeaderSize + kMaxFramePayload);
  }
}

}  // namespace
}  // namespace softborg::dist
