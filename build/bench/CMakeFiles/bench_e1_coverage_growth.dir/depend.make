# Empty dependencies file for bench_e1_coverage_growth.
# This may be replaced when dependencies are built.
