#include "pod/pod.h"

#include <algorithm>

#include "common/check.h"
#include "obs/registry.h"
#include "obs/span.h"

namespace softborg {

namespace {
// Fleet-wide pod telemetry: every pod instance feeds the same counters.
struct PodMetrics {
  obs::Counter& runs =
      obs::MetricsRegistry::global().counter("pod.runs_total");
  obs::Counter& failures =
      obs::MetricsRegistry::global().counter("pod.failures_total");
  obs::Counter& fix_interventions =
      obs::MetricsRegistry::global().counter("pod.fix_interventions_total");
  obs::Counter& guided_runs =
      obs::MetricsRegistry::global().counter("pod.guided_runs_total");

  static PodMetrics& get() {
    static PodMetrics m;
    return m;
  }
};
}  // namespace

Pod::Pod(PodId id, const CorpusEntry& entry, UserProfile profile,
         PodConfig config, std::uint64_t seed)
    : id_(id),
      entry_(&entry),
      profile_(std::move(profile)),
      config_(config),
      rng_(seed) {
  SB_CHECK(profile_.input_prefs.empty() ||
           profile_.input_prefs.size() == entry.domains.size());
}

bool Pod::install(const GuardPatch& patch) {
  if (patch.program != program()) return false;
  if (std::count(installed_fix_ids_.begin(), installed_fix_ids_.end(),
                 patch.id.value) != 0) {
    return false;
  }
  installed_fix_ids_.push_back(patch.id.value);
  fixes_.guards.push_back(patch);
  return true;
}

bool Pod::install(const CrashGuardFix& fix) {
  if (fix.program != program()) return false;
  if (std::count(installed_fix_ids_.begin(), installed_fix_ids_.end(),
                 fix.id.value) != 0) {
    return false;
  }
  installed_fix_ids_.push_back(fix.id.value);
  fixes_.crash_guards.push_back(fix);
  return true;
}

bool Pod::install(const LockAvoidanceFix& fix) {
  if (fix.program != program()) return false;
  if (std::count(installed_fix_ids_.begin(), installed_fix_ids_.end(),
                 fix.id.value) != 0) {
    return false;
  }
  installed_fix_ids_.push_back(fix.id.value);
  fixes_.lock_fixes.push_back(fix);
  return true;
}

void Pod::push_guidance(GuidanceDirective directive) {
  if (directive.program != program()) return;
  if (!rng_.next_bool(profile_.guidance_compliance)) return;  // declined
  guidance_.push_back(std::move(directive));
}

std::uint32_t Pod::draws_for_day() {
  // Cheap Poisson-ish draw: rate r gives floor(r) runs plus one more with
  // probability frac(r), jittered by +/-1 occasionally.
  const double rate = profile_.executions_per_day;
  std::uint32_t n = static_cast<std::uint32_t>(rate);
  if (rng_.next_bool(rate - static_cast<double>(n))) n++;
  if (n > 0 && rng_.next_bool(0.1)) n--;
  if (rng_.next_bool(0.1)) n++;
  return n;
}

std::vector<Value> Pod::draw_inputs() {
  std::vector<Value> inputs;
  inputs.reserve(entry_->domains.size());
  for (std::size_t i = 0; i < entry_->domains.size(); ++i) {
    const InputDomain& domain = profile_.input_prefs.empty()
                                    ? entry_->domains[i]
                                    : profile_.input_prefs[i];
    inputs.push_back(rng_.next_in(domain.lo, domain.hi));
  }
  return inputs;
}

PodRun Pod::run_once(std::uint64_t day) {
  SB_SPAN("pod.run");
  // Consume a guidance directive if one is queued.
  std::optional<GuidanceDirective> directive;
  if (!guidance_.empty()) {
    directive = std::move(guidance_.front());
    guidance_.pop_front();
  }

  ExecConfig cfg;
  cfg.inputs = directive && directive->input_seed ? *directive->input_seed
                                                  : draw_inputs();
  cfg.seed = rng_();
  cfg.max_steps = config_.max_steps;
  cfg.granularity = config_.granularity;
  cfg.enable_fusion = config_.enable_fusion;
  cfg.fixes = &fixes_;
  if (directive && directive->schedule) {
    cfg.schedule_plan = &*directive->schedule;
  }
  if (directive && directive->faults) cfg.fault_plan = &*directive->faults;
  cfg.collect_branch_events = config_.sampling_rate > 0;

  ExecResult exec = execute(entry_->program, cfg);

  // Inferred end-user feedback: a hung program is usually force-killed.
  if (exec.trace.outcome == Outcome::kHang &&
      rng_.next_bool(profile_.kill_on_hang)) {
    exec.trace.outcome = Outcome::kUserKilled;
  }

  exec.trace.id = TraceId((id_.value << 24) | next_trace_seq_++);
  exec.trace.pod = id_;
  exec.trace.day = day;
  exec.trace.guided = directive.has_value();

  if (obs::tracing_enabled()) {
    // Birth of the causal chain: the same (id, program) derivation every
    // downstream process repeats, so this event joins theirs by trace id.
    obs::TraceContext ctx{obs::causal_trace_id(exec.trace.id.value,
                                               exec.trace.program.value),
                          0};
    ctx = obs::with_hop(ctx, obs::Hop::kPod);
    obs::Recorder::record(obs::EventKind::kPodEmit, ctx,
                          static_cast<std::uint32_t>(id_.value));
  }

  PodRun run;
  run.fix_intervened = exec.fix_intervened;
  run.deadlock_cycle = std::move(exec.deadlock_cycle);

  // Coordinated sampling: site-level observations instead of the path.
  if (config_.sampling_rate > 0) {
    SampledTrace st;
    st.program = program();
    st.pod = id_;
    st.outcome = exec.trace.outcome;
    for (const auto& ev : exec.branch_events) {
      if (sample_site(ev.site, id_, config_.sampling_rate)) {
        st.observations.push_back({ev.site, ev.taken});
      }
    }
    run.sampled = std::move(st);
  }

  run.trace = anonymize(exec.trace, config_.anonymize);

  stats_.runs++;
  if (run.trace.outcome != Outcome::kOk) stats_.failures++;
  if (exec.fix_intervened) stats_.fix_interventions++;
  if (directive) stats_.guided_runs++;
  if (obs::enabled()) {
    auto& m = PodMetrics::get();
    m.runs.add();
    if (run.trace.outcome != Outcome::kOk) m.failures.add();
    if (exec.fix_intervened) m.fix_interventions.add();
    if (directive) m.guided_runs.add();
  }
  return run;
}

void Pod::save_state(Bytes& out) const {
  std::uint64_t rng_state[4];
  rng_.export_state(rng_state);
  for (const std::uint64_t word : rng_state) put_varint(out, word);
  put_varint(out, fixes_.guards.size());
  for (const GuardPatch& p : fixes_.guards) put_blob(out, encode_guard_patch(p));
  put_varint(out, fixes_.crash_guards.size());
  for (const CrashGuardFix& f : fixes_.crash_guards)
    put_blob(out, encode_crash_guard(f));
  put_varint(out, fixes_.lock_fixes.size());
  for (const LockAvoidanceFix& f : fixes_.lock_fixes)
    put_blob(out, encode_lock_fix(f));
  put_varint(out, installed_fix_ids_.size());
  for (const std::uint64_t id : installed_fix_ids_) put_varint(out, id);
  put_varint(out, guidance_.size());
  for (const GuidanceDirective& g : guidance_) put_blob(out, encode_guidance(g));
  put_varint(out, stats_.runs);
  put_varint(out, stats_.failures);
  put_varint(out, stats_.fix_interventions);
  put_varint(out, stats_.guided_runs);
  put_varint(out, next_trace_seq_);
}

bool Pod::load_state(StateReader& r) {
  std::uint64_t rng_state[4];
  for (std::uint64_t& word : rng_state) word = r.u64();
  rng_.import_state(rng_state);

  // Each fix/guidance record round-trips through its validated protocol
  // decoder, so a bit-flipped snapshot fails here rather than installing a
  // malformed fix into the interpreter.
  fixes_ = FixSet{};
  const std::uint64_t n_guards = r.count();
  fixes_.guards.reserve(n_guards);
  for (std::uint64_t i = 0; i < n_guards && r.ok(); ++i) {
    Bytes wire;
    r.blob(wire);
    auto p = r.ok() ? decode_guard_patch(wire) : std::nullopt;
    if (!p || p->program != program()) {
      r.fail();
      return false;
    }
    fixes_.guards.push_back(std::move(*p));
  }
  const std::uint64_t n_crash = r.count();
  fixes_.crash_guards.reserve(n_crash);
  for (std::uint64_t i = 0; i < n_crash && r.ok(); ++i) {
    Bytes wire;
    r.blob(wire);
    auto f = r.ok() ? decode_crash_guard(wire) : std::nullopt;
    if (!f || f->program != program()) {
      r.fail();
      return false;
    }
    fixes_.crash_guards.push_back(std::move(*f));
  }
  const std::uint64_t n_lock = r.count();
  fixes_.lock_fixes.reserve(n_lock);
  for (std::uint64_t i = 0; i < n_lock && r.ok(); ++i) {
    Bytes wire;
    r.blob(wire);
    auto f = r.ok() ? decode_lock_fix(wire) : std::nullopt;
    if (!f || f->program != program()) {
      r.fail();
      return false;
    }
    fixes_.lock_fixes.push_back(std::move(*f));
  }
  installed_fix_ids_.clear();
  const std::uint64_t n_ids = r.count();
  installed_fix_ids_.reserve(n_ids);
  for (std::uint64_t i = 0; i < n_ids && r.ok(); ++i) {
    installed_fix_ids_.push_back(r.u64());
  }
  if (r.ok() && installed_fix_ids_.size() != fixes_.size()) {
    r.fail();  // the id ledger and the fix set must agree
    return false;
  }
  guidance_.clear();
  const std::uint64_t n_guidance = r.count();
  for (std::uint64_t i = 0; i < n_guidance && r.ok(); ++i) {
    Bytes wire;
    r.blob(wire);
    auto g = r.ok() ? decode_guidance(wire) : std::nullopt;
    if (!g || g->program != program()) {
      r.fail();
      return false;
    }
    guidance_.push_back(std::move(*g));
  }
  stats_.runs = r.u64();
  stats_.failures = r.u64();
  stats_.fix_interventions = r.u64();
  stats_.guided_runs = r.u64();
  next_trace_seq_ = r.u64();
  if (r.ok() && next_trace_seq_ == 0) r.fail();  // seq starts at 1
  return r.ok();
}

}  // namespace softborg
