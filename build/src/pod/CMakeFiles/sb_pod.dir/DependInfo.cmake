
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pod/pod.cpp" "src/pod/CMakeFiles/sb_pod.dir/pod.cpp.o" "gcc" "src/pod/CMakeFiles/sb_pod.dir/pod.cpp.o.d"
  "/root/repo/src/pod/protocol.cpp" "src/pod/CMakeFiles/sb_pod.dir/protocol.cpp.o" "gcc" "src/pod/CMakeFiles/sb_pod.dir/protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/minivm/CMakeFiles/sb_minivm.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/sb_privacy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
