// Tests for the fleet telemetry layer (src/obs): registry semantics,
// counter determinism under concurrency, delta reads, exporter formats,
// and the span sampling switch.
//
// Most tests build their own MetricsRegistry instance for isolation; only
// the span tests touch the global registry (SB_SPAN sites resolve there),
// and they use uniquely named spans plus delta reads so ordering against
// other suites in this binary cannot matter.
#include <gtest/gtest.h>

#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/registry.h"
#include "obs/span.h"

namespace softborg {
namespace {

TEST(MetricsRegistry, CounterAccumulatesAndHandlesAreStable) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("test.events_total");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same metric.
  EXPECT_EQ(&reg.counter("test.events_total"), &c);
  EXPECT_EQ(reg.num_metrics(), 1u);
}

TEST(MetricsRegistry, GaugeSetAddReset) {
  obs::MetricsRegistry reg;
  obs::Gauge& g = reg.gauge("test.depth");
  g.set(7);
  g.add(-3);
  EXPECT_EQ(g.value(), 4);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(MetricsRegistry, HistogramRecordsThroughSnapshot) {
  obs::MetricsRegistry reg;
  obs::HistogramMetric& h = reg.histogram("test.latency.us");
  for (double v : {1.0, 2.0, 4.0, 8.0}) h.record(v);
  const Histogram snap = h.snapshot();
  EXPECT_EQ(snap.count(), 4u);
  EXPECT_DOUBLE_EQ(snap.sum(), 15.0);
  EXPECT_DOUBLE_EQ(snap.max_seen(), 8.0);
}

TEST(MetricsRegistry, SnapshotIsNameSorted) {
  obs::MetricsRegistry reg;
  // Registered out of order; the snapshot must come back sorted.
  reg.counter("zebra_total").add(1);
  reg.counter("alpha_total").add(2);
  reg.counter("middle_total").add(3);
  reg.gauge("z.depth").set(1);
  reg.gauge("a.depth").set(2);
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "alpha_total");
  EXPECT_EQ(snap.counters[1].name, "middle_total");
  EXPECT_EQ(snap.counters[2].name, "zebra_total");
  ASSERT_EQ(snap.gauges.size(), 2u);
  EXPECT_EQ(snap.gauges[0].name, "a.depth");
  EXPECT_EQ(snap.gauges[1].name, "z.depth");
}

TEST(MetricsRegistry, CountersTextIsTheStableByteSurface) {
  obs::MetricsRegistry reg;
  reg.counter("b_total").add(2);
  reg.counter("a_total").add(1);
  EXPECT_EQ(reg.snapshot().counters_text(), "a_total 1\nb_total 2\n");
}

TEST(MetricsRegistry, DeltaSnapshotReturnsIncrementsSinceLast) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("test.events_total");
  c.add(10);
  EXPECT_EQ(reg.delta_snapshot().counters[0].value, 10u);
  c.add(5);
  EXPECT_EQ(reg.delta_snapshot().counters[0].value, 5u);
  // No increments since the last delta.
  EXPECT_EQ(reg.delta_snapshot().counters[0].value, 0u);
  // Cumulative snapshots are unaffected by the delta baseline.
  EXPECT_EQ(reg.snapshot().counters[0].value, 15u);
}

TEST(MetricsRegistry, DeltaBaselinesNewMetricsAtZero) {
  obs::MetricsRegistry reg;
  reg.counter("early_total").add(1);
  reg.rebaseline();
  reg.counter("late_total").add(9);  // first registered after the baseline
  const obs::MetricsSnapshot delta = reg.delta_snapshot();
  ASSERT_EQ(delta.counters.size(), 2u);
  EXPECT_EQ(delta.counters[0].name, "early_total");
  EXPECT_EQ(delta.counters[0].value, 0u);
  EXPECT_EQ(delta.counters[1].name, "late_total");
  EXPECT_EQ(delta.counters[1].value, 9u);
}

TEST(MetricsRegistry, ResetZeroesInPlaceAndHandlesSurvive) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("test.events_total");
  obs::Gauge& g = reg.gauge("test.depth");
  obs::HistogramMetric& h = reg.histogram("test.latency.us");
  c.add(3);
  g.set(3);
  h.record(3.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.snapshot().count(), 0u);
  // The handles are still the registered metrics.
  c.add(1);
  EXPECT_EQ(reg.snapshot().counters[0].value, 1u);
}

// The determinism contract: a counter's value is the sum of a multiset of
// increments, so however many threads hammer shared counters, the snapshot
// equals the serial total exactly — no lost updates, no double counts.
TEST(MetricsRegistry, ConcurrentIncrementsSumExactly) {
  obs::MetricsRegistry reg;
  obs::Counter& hits = reg.counter("test.hits_total");
  obs::Counter& bytes = reg.counter("test.bytes_total");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&hits, &bytes] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        hits.add();
        bytes.add(3);
      }
    });
  }
  for (auto& w : workers) w.join();
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters_text(),
            "test.bytes_total " + std::to_string(kThreads * kPerThread * 3) +
                "\ntest.hits_total " +
                std::to_string(kThreads * kPerThread) + "\n");
}

// Registration itself is thread-safe: concurrent first-use of the same name
// must converge on one metric (pump workers race to resolve handles).
TEST(MetricsRegistry, ConcurrentRegistrationConvergesOnOneMetric) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      obs::Counter& c = reg.counter("test.raced_total");
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.num_metrics(), 1u);
  EXPECT_EQ(reg.snapshot().counters[0].value, kThreads * kPerThread);
}

// ------------------------------------------------------------- exporters ---

obs::MetricsSnapshot exporter_fixture() {
  obs::MetricsRegistry reg;
  reg.counter("hive.traces_ingested_total").add(128);
  reg.counter("net.sent_total").add(42);
  reg.gauge("net.in_flight").set(-3);  // gauges may go negative
  obs::HistogramMetric& h = reg.histogram("hive.ingest.replay.us");
  for (double v : {10.0, 20.0, 40.0}) h.record(v);
  return reg.snapshot();
}

TEST(MetricsExport, PrometheusExpositionFormat) {
  const std::string text = obs::to_prometheus(exporter_fixture());
  // Every line is either a TYPE comment or a sample; names carry the
  // softborg_ prefix with dots mapped to underscores.
  const std::regex type_line(
      R"(# TYPE softborg_[A-Za-z0-9_:]+ (counter|gauge|summary))");
  const std::regex sample_line(
      R"re(softborg_[A-Za-z0-9_:]+(\{quantile="0\.(5|9|99)"\})? -?[0-9][0-9eE.+-]*)re");
  std::istringstream lines(text);
  std::string ln;
  std::size_t n = 0;
  while (std::getline(lines, ln)) {
    ++n;
    if (ln.rfind("# ", 0) == 0) {
      EXPECT_TRUE(std::regex_match(ln, type_line)) << ln;
    } else {
      EXPECT_TRUE(std::regex_match(ln, sample_line)) << ln;
    }
  }
  EXPECT_GT(n, 0u);
  // Spot-check each kind.
  EXPECT_NE(text.find("# TYPE softborg_hive_traces_ingested_total counter\n"
                      "softborg_hive_traces_ingested_total 128\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE softborg_net_in_flight gauge\n"
                      "softborg_net_in_flight -3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE softborg_hive_ingest_replay_us summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("softborg_hive_ingest_replay_us{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("softborg_hive_ingest_replay_us_sum 70\n"),
            std::string::npos);
  EXPECT_NE(text.find("softborg_hive_ingest_replay_us_count 3\n"),
            std::string::npos);
}

TEST(MetricsExport, JsonSnapshotSchema) {
  const std::string json = obs::to_json(exporter_fixture());
  EXPECT_NE(json.find("\"schema\": \"softborg.metrics.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"counters\": ["), std::string::npos);
  EXPECT_NE(json.find("\"gauges\": ["), std::string::npos);
  EXPECT_NE(json.find("\"histograms\": ["), std::string::npos);
  EXPECT_NE(
      json.find("{\"name\": \"hive.traces_ingested_total\", \"value\": 128}"),
      std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"net.in_flight\", \"value\": -3}"),
            std::string::npos);
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos);
  for (const char* key : {"\"sum\": ", "\"p50\": ", "\"p90\": ", "\"p99\": ",
                          "\"max\": "}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Structural sanity: braces and brackets balance, so the document parses.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (char c : json) {
    if (c == '"') in_string = !in_string;
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(MetricsExport, EmptySnapshotStillWellFormed) {
  const obs::MetricsSnapshot empty;
  EXPECT_NE(obs::to_json(empty).find("\"counters\": []"), std::string::npos);
  EXPECT_EQ(obs::to_prometheus(empty), "");
}

// ----------------------------------------------------------------- spans ---

TEST(MetricsRegistry, SpanRecordsOnlyWhileSamplingEnabled) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::HistogramMetric& hist = reg.histogram("obs_test.span_demo.us");
  const std::uint64_t before = hist.snapshot().count();

  ASSERT_FALSE(obs::spans_enabled());  // default off
  {
    SB_SPAN("obs_test.span_demo");
  }
  EXPECT_EQ(hist.snapshot().count(), before);  // disabled: no record

  obs::set_spans_enabled(true);
  {
    SB_SPAN("obs_test.span_demo");
  }
  obs::set_spans_enabled(false);
  EXPECT_EQ(hist.snapshot().count(), before + 1);
  // Microsecond values are nonnegative wall-clock; never asserted beyond
  // sanity (timing metrics are exported, not pinned).
  EXPECT_GE(hist.snapshot().max_seen(), 0.0);
}

TEST(MetricsRegistry, CollectionKillSwitch) {
  EXPECT_TRUE(obs::enabled());  // default on
  obs::set_enabled(false);
  EXPECT_FALSE(obs::enabled());
  obs::set_enabled(true);
  EXPECT_TRUE(obs::enabled());
}

}  // namespace
}  // namespace softborg
