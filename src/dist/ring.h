// Consistent-hash ring for trace routing (ISSUE 9 tentpole).
//
// ShardedHive's in-process router owns a fixed shard set, so plain
// mod-hashing is fine there. The distributed router must support adding
// shard processes to a live fleet: mod-hashing re-keys nearly every
// program, invalidating every shard's accumulated trees at once, while a
// consistent ring moves only ~1/(n+1) of the key space to the newcomer.
// Each shard projects `vnodes_per_shard` points onto the 64-bit ring
// (splitmix-mixed, so placement is deterministic and well spread); a key is
// owned by the first point clockwise from its hash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace softborg::dist {

class HashRing {
 public:
  explicit HashRing(std::size_t num_shards, std::size_t vnodes_per_shard = 64);

  std::size_t num_shards() const { return num_shards_; }

  // Which shard owns `key` (binary search over the sorted points).
  std::size_t owner(std::uint64_t key) const;

  // Adds shard `num_shards()` to the ring. Existing keys either keep their
  // owner or move to the new shard — never between old shards (the property
  // tests pin this).
  void add_shard();

 private:
  void insert_points(std::size_t shard);

  std::size_t num_shards_ = 0;
  std::size_t vnodes_ = 0;
  // (ring position, shard), sorted by position.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;
};

}  // namespace softborg::dist
