#include "hive/adapt.h"

#include <algorithm>
#include <cmath>

namespace softborg {

// --- YieldLedger ------------------------------------------------------------

void YieldLedger::note_work(ProgramId program, std::uint64_t units) {
  programs_[program.value].work_pending += units;
}

void YieldLedger::observe_program(ProgramId program, std::size_t total_paths,
                                  std::size_t open_frontiers,
                                  bool has_valid_proof) {
  ProgramState& st = programs_[program.value];
  st.est.opportunity = static_cast<double>(open_frontiers);
  st.est.proven = has_valid_proof;
  if (!st.baselined) {
    // First sighting: no delta to score yet, just anchor the baseline.
    st.baselined = true;
    st.last_total_paths = total_paths;
    st.work_pending = 0;
    return;
  }
  const std::uint64_t gained =
      total_paths > st.last_total_paths ? total_paths - st.last_total_paths
                                        : 0;
  const double work =
      static_cast<double>(std::max<std::uint64_t>(st.work_pending, 1));
  const double obs = static_cast<double>(gained) / work;
  ewma(st.est.ret, obs);
  ewma(st.est.risk, std::fabs(obs - st.est.ret));
  st.est.observations++;
  st.last_total_paths = total_paths;
  st.work_pending = 0;
}

const YieldLedger::Estimate* YieldLedger::estimate(ProgramId program) const {
  const auto it = programs_.find(program.value);
  return it == programs_.end() ? nullptr : &it->second.est;
}

void YieldLedger::observe_equity(ProgramId program, std::uint64_t key,
                                 double mean_unit_cost, std::uint64_t units) {
  if (units == 0) return;
  EquityEstimate& eq = equities_[{program.value, key}];
  if (eq.units == 0) {
    eq.mean_cost = mean_unit_cost;
  } else {
    ewma(eq.mean_cost, mean_unit_cost);
  }
  ewma(eq.dev, std::fabs(mean_unit_cost - eq.mean_cost));
  eq.units += units;
}

const YieldLedger::EquityEstimate* YieldLedger::equity(
    ProgramId program, std::uint64_t key) const {
  const auto it = equities_.find({program.value, key});
  return it == equities_.end() ? nullptr : &it->second;
}

void YieldLedger::observe_shard_pump(std::size_t shard, double seconds) {
  if (shard >= shard_load_.size()) shard_load_.resize(shard + 1, 0.0);
  if (shard_load_[shard] == 0.0) {
    shard_load_[shard] = seconds;
  } else {
    ewma(shard_load_[shard], seconds);
  }
}

double YieldLedger::shard_load(std::size_t shard) const {
  return shard < shard_load_.size() ? shard_load_[shard] : 0.0;
}

void YieldLedger::observe_hive(const IngestStats& ingest,
                               const Hive::ProofClosureStats& proof) {
  const std::uint64_t hits = ingest.replay_cache_hits - replay_hits_base_;
  const std::uint64_t misses =
      ingest.replay_cache_misses - replay_misses_base_;
  if (hits + misses > 0) {
    ewma(replay_recycle_rate_,
         static_cast<double>(hits) / static_cast<double>(hits + misses));
  }
  replay_hits_base_ = ingest.replay_cache_hits;
  replay_misses_base_ = ingest.replay_cache_misses;

  const std::uint64_t calls = proof.solver_calls - solver_calls_base_;
  const std::uint64_t recycled = proof.recycled() - solver_recycled_base_;
  if (calls > 0) {
    ewma(solver_recycle_rate_,
         static_cast<double>(recycled) / static_cast<double>(calls));
  }
  solver_calls_base_ = proof.solver_calls;
  solver_recycled_base_ = proof.recycled();
}

void YieldLedger::ingest_metrics_delta(const obs::MetricsSnapshot& delta) {
  const auto value = [&](const char* name) -> std::uint64_t {
    const auto v = delta.counter_value(name);
    return v.has_value() ? *v : 0;
  };
  const std::uint64_t hits = value("hive.replay.cache_hits_total");
  const std::uint64_t misses = value("hive.replay.cache_misses_total");
  if (hits + misses > 0) {
    ewma(replay_recycle_rate_,
         static_cast<double>(hits) / static_cast<double>(hits + misses));
  }
  const std::uint64_t calls = value("solver.calls_total");
  const std::uint64_t recycled = value("solver.exact_hits_total") +
                                 value("solver.unsat_subsumed_total") +
                                 value("solver.models_reused_total");
  if (calls > 0) {
    ewma(solver_recycle_rate_,
         static_cast<double>(recycled) / static_cast<double>(calls));
  }
}

void YieldLedger::save_planning_state(Bytes& out) const {
  put_varint(out, programs_.size());
  for (const auto& [key, st] : programs_) {
    put_varint(out, key);
    put_f64(out, st.est.ret);
    put_f64(out, st.est.risk);
    put_f64(out, st.est.opportunity);
    put_varint(out, st.est.observations);
    put_bool(out, st.est.proven);
    put_varint(out, st.last_total_paths);
    put_varint(out, st.work_pending);
    put_bool(out, st.baselined);
  }
  put_varint(out, equities_.size());
  for (const auto& [key, eq] : equities_) {
    put_varint(out, key.first);
    put_varint(out, key.second);
    put_f64(out, eq.mean_cost);
    put_f64(out, eq.dev);
    put_varint(out, eq.units);
  }
}

void YieldLedger::save_state(Bytes& out) const {
  save_planning_state(out);
  put_varint(out, shard_load_.size());
  for (const double load : shard_load_) put_f64(out, load);
  put_f64(out, replay_recycle_rate_);
  put_f64(out, solver_recycle_rate_);
  put_varint(out, replay_hits_base_);
  put_varint(out, replay_misses_base_);
  put_varint(out, solver_calls_base_);
  put_varint(out, solver_recycled_base_);
}

bool YieldLedger::load_state(StateReader& r) {
  programs_.clear();
  equities_.clear();
  shard_load_.clear();
  const std::uint64_t n_programs = r.count(8);
  std::uint64_t prev_key = 0;
  for (std::uint64_t i = 0; i < n_programs && r.ok(); ++i) {
    const std::uint64_t key = r.u64();
    if (i > 0 && key <= prev_key) {
      r.fail();  // sorted, unique — anything else is corruption
      return false;
    }
    prev_key = key;
    ProgramState st;
    st.est.ret = r.f64();
    st.est.risk = r.f64();
    st.est.opportunity = r.f64();
    st.est.observations = r.u64();
    st.est.proven = r.boolean();
    st.last_total_paths = r.u64();
    st.work_pending = r.u64();
    st.baselined = r.boolean();
    programs_[key] = st;
  }
  const std::uint64_t n_equities = r.count(5);
  std::pair<std::uint64_t, std::uint64_t> prev_eq{0, 0};
  for (std::uint64_t i = 0; i < n_equities && r.ok(); ++i) {
    std::pair<std::uint64_t, std::uint64_t> key;
    key.first = r.u64();
    key.second = r.u64();
    if (i > 0 && key <= prev_eq) {
      r.fail();
      return false;
    }
    prev_eq = key;
    EquityEstimate eq;
    eq.mean_cost = r.f64();
    eq.dev = r.f64();
    eq.units = r.u64();
    equities_[key] = eq;
  }
  const std::uint64_t n_shards = r.count();
  shard_load_.reserve(n_shards);
  for (std::uint64_t i = 0; i < n_shards && r.ok(); ++i) {
    shard_load_.push_back(r.f64());
  }
  replay_recycle_rate_ = r.f64();
  solver_recycle_rate_ = r.f64();
  replay_hits_base_ = r.u64();
  replay_misses_base_ = r.u64();
  solver_calls_base_ = r.u64();
  solver_recycled_base_ = r.u64();
  return r.ok();
}

bool YieldLedger::state_equals(const YieldLedger& other) const {
  Bytes a, b;
  save_state(a);
  other.save_state(b);
  return a == b;
}

bool YieldLedger::planning_state_equals(const YieldLedger& other) const {
  Bytes a, b;
  save_planning_state(a);
  other.save_planning_state(b);
  return a == b;
}

// --- AdaptivePlanner --------------------------------------------------------

double AdaptivePlanner::score(const YieldLedger& ledger,
                              ProgramId program) const {
  const YieldLedger::Estimate* e = ledger.estimate(program);
  const double opportunity = e != nullptr ? e->opportunity : 1.0;
  const bool proven = e != nullptr && e->proven;
  if (proven && opportunity <= 0.0) return 0.0;  // saturated: fully explored
                                                 // and certified
  const std::uint64_t n = e != nullptr ? e->observations : 0;
  const double mean_ret = n > 0 ? e->ret : 0.0;
  const double risk = e != nullptr ? e->risk : 0.0;
  const double bonus =
      config_.optimism / std::sqrt(1.0 + static_cast<double>(n));
  // Relative risk: deviation per unit of (return + 1) so risky-but-rich
  // targets are not starved outright, only discounted.
  const double rel_risk = risk / (mean_ret + 1.0);
  double s = (mean_ret + bonus) / (1.0 + config_.risk_aversion * rel_risk);
  // A complete-but-unproven tree still deserves proof/validation budget,
  // just not the exploration premium.
  if (opportunity <= 0.0) s *= 0.25;
  return s;
}

std::vector<std::size_t> AdaptivePlanner::allocate(
    std::size_t budget, const std::vector<ProgramId>& targets,
    const YieldLedger& ledger) const {
  std::vector<std::size_t> shares(targets.size(), 0);
  if (targets.empty() || budget == 0) return shares;

  std::vector<double> weights(targets.size());
  double total = 0.0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    weights[i] = std::max(score(ledger, targets[i]), 0.0);
    total += weights[i];
  }
  if (total <= 0.0) {
    // No signal anywhere: degrade to the static uniform split.
    weights.assign(targets.size(), 1.0);
    total = static_cast<double>(targets.size());
  }

  // Largest-remainder apportionment: floor the proportional shares, then
  // hand the leftover units to the largest fractional remainders (ties to
  // the lower index), so shares always sum exactly to `budget`.
  std::vector<double> remainders(targets.size());
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const double exact =
        static_cast<double>(budget) * weights[i] / total;
    shares[i] = static_cast<std::size_t>(exact);
    remainders[i] = exact - static_cast<double>(shares[i]);
    assigned += shares[i];
  }
  std::vector<std::size_t> order(targets.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (remainders[a] != remainders[b]) return remainders[a] > remainders[b];
    return a < b;
  });
  for (std::size_t k = 0; assigned < budget; k = (k + 1) % order.size()) {
    shares[order[k]]++;
    assigned++;
  }
  return shares;
}

std::vector<std::size_t> AdaptivePlanner::rank(
    const std::vector<ProgramId>& targets, const YieldLedger& ledger) const {
  std::vector<double> scores(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    scores[i] = score(ledger, targets[i]);
  }
  std::vector<std::size_t> order(targets.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  return order;
}

double AdaptivePlanner::shard_scale(const YieldLedger& ledger,
                                    std::size_t shard) const {
  const std::size_t n = ledger.num_shards_seen();
  if (n == 0) return 1.0;
  double total = 0.0;
  std::size_t with_load = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double load = ledger.shard_load(i);
    if (load > 0.0) {
      total += load;
      with_load++;
    }
  }
  const double own = ledger.shard_load(shard);
  if (with_load == 0 || own <= 0.0) return 1.0;
  const double mean = total / static_cast<double>(with_load);
  return std::clamp(mean / own, 0.5, 2.0);
}

}  // namespace softborg
