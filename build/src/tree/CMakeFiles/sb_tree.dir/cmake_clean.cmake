file(REMOVE_RECURSE
  "CMakeFiles/sb_tree.dir/exec_tree.cpp.o"
  "CMakeFiles/sb_tree.dir/exec_tree.cpp.o.d"
  "CMakeFiles/sb_tree.dir/tree_codec.cpp.o"
  "CMakeFiles/sb_tree.dir/tree_codec.cpp.o.d"
  "libsb_tree.a"
  "libsb_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
