// The SoftBorg world: a simulated deployment of the whole platform
// (paper Fig. 1), substituting for the multi-user run corpus the paper
// assumes (see DESIGN.md, substitutions).
//
// A World owns a program corpus, a heterogeneous fleet of pods (each pod =
// one simulated user of one program, with its own input preferences and
// usage rate), one hive, and the unreliable network between them. Virtual
// time advances in days; each day:
//   1. pods deliver pending downstream messages (fixes, guidance),
//   2. every pod performs its user's executions and ships the by-products
//      upstream over the lossy network,
//   3. the hive ingests, detects bugs, synthesizes+validates fixes, and
//      broadcasts approved fixes back,
//   4. (optionally) the hive plans guidance directives for a sample of pods,
//   5. per-day metrics are recorded (the raw series behind experiments
//      E1/E3/E5).
//
// Everything is seeded: a World run is exactly reproducible.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "hive/adapt.h"
#include "hive/coop.h"
#include "hive/hive.h"
#include "minivm/corpus.h"
#include "net/simnet.h"
#include "obs/registry.h"
#include "pod/pod.h"

namespace softborg {

struct WorldConfig {
  std::size_t pods_per_program = 50;
  std::uint64_t days = 30;
  double mean_runs_per_day = 6.0;  // per pod; individual rates vary around it
  NetConfig net;
  PodConfig pod_config;
  HiveConfig hive;
  bool distribute_fixes = true;
  // Staged rollout: fixes first ship to a canary cohort of the program's
  // pods; full rollout follows after `canary_days` unless the hive's
  // fix-effectiveness telemetry reopened the bug in the meantime.
  double canary_fraction = 1.0;  // 1.0 = ship to everyone immediately
  std::uint64_t canary_days = 2;
  std::size_t guidance_per_program_per_day = 0;
  // Proof gap closure: each day the hive attempts cumulative proofs for this
  // many programs (a rotating corpus slice, so the whole fleet is swept every
  // ceil(corpus / n) days); 0 disables. Attempts fan out on
  // HiveConfig::proof_threads and recycle solver results when
  // HiveConfig::solver_cache is on.
  std::size_t proof_programs_per_day = 0;
  Property proof_property = Property::kNeverCrashes;
  // Adaptive control plane (hive/adapt.h). With the default
  // static_plan=true every schedule below is the historical static one and
  // runs are byte-identical to the pre-adaptive pipeline; the yield ledger
  // still observes, so flipping adaptation on later starts from warm
  // estimates. With static_plan=false, step_day() rebalances the guidance
  // pool (guidance_per_program_per_day × corpus as one budget), the daily
  // proof slice (highest-scoring programs instead of rotation), and coop
  // worker investment from measured per-program yield.
  AdaptConfig adapt;
  // Cooperative-exploration investment: programs explored cooperatively per
  // day (0 disables). Statically a rotating corpus slice with
  // coop.num_workers each; adaptively the top-ranked programs with worker
  // counts allocated by yield.
  std::size_t coop_programs_per_day = 0;
  CoopConfig coop;
  std::size_t ticks_per_day = 12;
  std::uint64_t seed = 1;
  // Durable corpus store (src/store). When snapshot_dir is non-empty and
  // snapshot_every_n_days > 0, step_day() writes a full-state snapshot
  // generation at the end of every n-th day; resume_from_snapshot() restores
  // one, and the restored run continues bit-identically to a run that was
  // never interrupted (tests/resume_test.cpp pins this).
  std::string snapshot_dir;
  std::size_t snapshot_every_n_days = 0;  // 0 = explicit save_snapshot only
  // Warm start: encoded trace wires (a previous run's persisted
  // crashing/regression set, see Hive::regression_inputs) ingested at the
  // start of every day, before the day's fresh traffic — fuzzer-style
  // replay of yesterday's crashers so known bugs resurface immediately in a
  // fresh fleet.
  std::vector<Bytes> warm_start_regressions;
  // Fleet telemetry: when true, step_day() captures a per-day delta snapshot
  // of the global metrics registry (counter increments since the previous
  // day) alongside DayMetrics; read the series back with metrics_history().
  // Off by default — the registry is process-wide, so two concurrently
  // stepping worlds would interleave their deltas.
  bool record_metrics = false;
};

struct DayMetrics {
  std::uint64_t day = 0;
  std::uint64_t runs = 0;
  std::uint64_t failures = 0;          // as experienced by users that day
  double failure_rate = 0.0;
  std::uint64_t fix_interventions = 0; // crashes/deadlocks averted by fixes
  std::size_t bugs_found_total = 0;
  std::size_t bugs_fixed_total = 0;
  std::size_t fixes_distributed_total = 0;
  std::size_t total_paths = 0;         // union coverage across programs
  // Unexplored directions remaining across all trees — the fleet's distance
  // from "every program proven". An O(1) read per tree (incremental
  // aggregate), so it is affordable as a daily metric.
  std::size_t open_frontiers = 0;
  std::uint64_t traces_delivered_total = 0;
  // Network delivery loss, cumulative NetStats totals: messages refused at
  // send() by a standing partition, eaten mid-flight by a partition that
  // formed after send, and dropped by random loss. Next to
  // traces_delivered_total these show how much fleet knowledge the
  // unreliable network costs (paper §4's "potentially unreliable network").
  std::uint64_t net_blocked_at_send_total = 0;
  std::uint64_t net_dropped_in_flight_total = 0;
  std::uint64_t net_dropped_total = 0;
  // Proof gap closure (when WorldConfig::proof_programs_per_day > 0):
  // cumulative totals from the hive's closure telemetry. The solver counters
  // split recycled results (cache hits + subsumptions + reused models) from
  // fresh solver work, so the day series shows recycling compound as the
  // fleet's knowledge accumulates.
  std::size_t proofs_valid_total = 0;
  std::uint64_t proof_solver_calls_total = 0;
  std::uint64_t proof_solver_recycled_total = 0;
  // Cooperative exploration (when WorldConfig::coop_programs_per_day > 0):
  // the day's run outcomes, including the efficiency signals that were
  // previously invisible to the obs layer (idle worker-ticks and work lost
  // to churn), attributed per partition strategy.
  std::uint64_t coop_runs = 0;
  std::uint64_t coop_ticks = 0;
  std::uint64_t coop_useful_steps = 0;
  std::uint64_t coop_wasted_steps = 0;
  std::uint64_t coop_idle_ticks = 0;
  std::array<std::uint64_t, 3> coop_runs_by_strategy{};  // by PartitionStrategy
  // Distributed-transport backpressure (src/dist), mirrored from the global
  // registry's dist.* series: cumulative traces shed by admission control,
  // pump rounds stalled on a zero-credit shard, the deepest any bounded
  // queue has run, and total wall time spent stalled. All zero in a purely
  // in-process fleet, so resume differentials on non-distributed runs are
  // unaffected.
  std::uint64_t dist_shed_total = 0;
  std::uint64_t dist_backpressure_stalls_total = 0;
  std::uint64_t dist_queue_depth_peak = 0;
  double dist_stall_seconds = 0.0;

  bool operator==(const DayMetrics&) const = default;
};

class World {
 public:
  World(std::vector<CorpusEntry> corpus, WorldConfig config);

  void step_day();
  void run();  // all configured days

  std::uint64_t day() const { return day_; }
  Hive& hive() { return *hive_; }
  const Hive& hive() const { return *hive_; }
  const std::vector<DayMetrics>& history() const { return history_; }
  // One registry delta snapshot per stepped day; empty unless
  // WorldConfig::record_metrics is set.
  const std::vector<obs::MetricsSnapshot>& metrics_history() const {
    return metrics_history_;
  }
  const std::vector<CorpusEntry>& corpus() const { return corpus_; }
  // The adaptive control plane's memory (read-only; step_day feeds it).
  const YieldLedger& yield_ledger() const { return ledger_; }
  std::size_t num_pods() const { return pods_.size(); }
  Pod& pod(std::size_t i) { return *pods_[i].pod; }
  const NetStats& net_stats() const { return net_.stats(); }
  std::size_t pending_rollouts() const { return pending_rollouts_.size(); }
  std::size_t rollouts_cancelled() const { return rollouts_cancelled_; }

  // --- durable store ----------------------------------------------------------
  // Writes a snapshot generation (seq = current day) of the entire mutable
  // world state — hive ledgers, trees, solver cache, every pod, the network,
  // day metrics, all rng streams — under `dir`, crash-safely (src/store).
  // False on I/O failure; the previous generation stays loadable.
  bool save_snapshot(const std::string& dir, std::string* err = nullptr) const;

  // Restores the newest good generation under `dir` into this
  // freshly-constructed World. Requires the same corpus and config as the
  // saving run (a config/corpus fingerprint in the snapshot is checked).
  // On false the World is in an unspecified state: discard it and construct
  // a fresh one (clean cold start). On success, continuing with step_day()
  // reproduces the uninterrupted run bit for bit.
  bool resume_from_snapshot(const std::string& dir, std::string* err = nullptr);

 private:
  struct PodSlot {
    std::unique_ptr<Pod> pod;
    Endpoint endpoint = 0;
    std::size_t corpus_index = 0;
  };

  UserProfile random_profile(const CorpusEntry& entry);
  // Hash of everything that determines a run: config knobs with behavioral
  // effect plus the corpus program ids. Stored in every snapshot's "meta"
  // part; resume refuses a snapshot whose fingerprint differs (a snapshot
  // from a differently-configured run would silently diverge, not resume).
  std::uint64_t config_fingerprint() const;
  void deliver_downstream();
  void broadcast_fixes(const std::vector<FixCandidate>& fixes);
  void send_fix_to(const FixCandidate& candidate, const PodSlot& slot);
  void advance_rollouts();
  void send_guidance();
  void attempt_daily_proofs();
  void run_daily_coop(DayMetrics& metrics);

  std::vector<CorpusEntry> corpus_;
  WorldConfig config_;
  Rng rng_;
  YieldLedger ledger_;
  AdaptivePlanner adapt_planner_;
  SimNet net_;
  Endpoint hive_endpoint_ = 0;
  std::unique_ptr<Hive> hive_;
  std::vector<PodSlot> pods_;
  std::uint64_t day_ = 0;
  std::size_t fixes_distributed_ = 0;
  struct PendingRollout {
    FixCandidate candidate;
    std::uint64_t full_rollout_day = 0;
  };
  std::vector<PendingRollout> pending_rollouts_;
  std::size_t rollouts_cancelled_ = 0;
  std::vector<DayMetrics> history_;
  std::vector<obs::MetricsSnapshot> metrics_history_;
};

// Reads only the persisted crashing/regression set ("regress" part) from the
// newest good snapshot under `dir` — the warm-start payload for a fresh
// World (WorldConfig::warm_start_regressions). Empty when the directory has
// no valid snapshot.
std::vector<Bytes> load_regression_inputs(const std::string& dir,
                                          std::string* err = nullptr);

}  // namespace softborg
