// Per-thread lock-free flight recorder (ISSUE 10 tentpole).
//
// Every instrumented site appends one fixed-width 32-byte event to a ring
// buffer owned by the calling thread: span begin/end, frame rx/tx, queue
// shed, credit stall, shard admission, merge, snapshot commit. The ring
// keeps the *last* kRingCapacity events per thread — a crash dump is the
// tail of what the process was doing, which is exactly the postmortem
// artifact the repair literature says matters. Costs when enabled: one
// clock read plus one TLS store per event, no locks, no allocation after
// the thread's first event. When disabled (the default): one relaxed atomic
// load and a predictable branch.
//
// Dumps are checksummed binary files (format below, codec fuzz-hardened in
// tests/recorder_test.cpp) written three ways:
//   * flush_to_file(): snapshot + atomic_write_file — the clean-shutdown
//     and on-snapshot-request path.
//   * install_signal_flush(): a SIGTERM/fatal-signal handler that writes
//     the same format with nothing but write(2)-style syscalls and stack
//     buffers (async-signal-safe), then re-raises. A SIGKILLed process
//     writes nothing — its *peers'* rings plus its own last-flushed dump
//     reconstruct the postmortem (the CI distributed job asserts this).
//   * encode_recorder_dump(): the pure codec, for tests and the merger.
//
// Each dump carries a (CLOCK_MONOTONIC, CLOCK_REALTIME) pair captured at
// flush time so the exporter (obs/export.h) can align per-process monotonic
// timestamps onto one timeline.
//
// Dump format (all little-endian, fixed width — the signal path must write
// it without formatting machinery):
//
//   magic "SBFR" + u16 version
//   u64 pid, u64 mono_ns, u64 real_ns
//   u32 label_len + label bytes            (process label, e.g. "shard2")
//   u32 name_count, per name: u32 len + bytes   (span/site name table)
//   u32 thread_count, per thread:
//     u32 tid, u64 event_count, event_count * 32-byte events
//   u64 checksum (incremental FNV-1a over every prior byte)
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/varint.h"
#include "obs/trace.h"

namespace softborg::obs {

namespace detail {
struct DumpSink;  // hashing byte sink (Bytes or raw fd), see recorder.cpp
}

inline constexpr std::uint16_t kRecorderDumpVersion = 1;

enum class EventKind : std::uint16_t {
  kNone = 0,
  kSpanBegin = 1,   // arg = name-table id
  kSpanEnd = 2,     // arg = name-table id
  kPodEmit = 3,     // arg = pod id (low 32 bits)
  kRouterIngress = 4,
  kRouterForward = 5,  // arg = shard index (frame tx toward the shard)
  kFrameRx = 6,        // arg = message type
  kFrameTx = 7,        // arg = message type
  kQueueShed = 8,      // arg = shard index, arg2 = queue depth
  kCreditStall = 9,    // arg = shard index, arg2 = queued traces
  kCreditResume = 10,  // arg = shard index, arg2 = stall duration us
  kShardAdmit = 11,    // arg = shard index
  kBatchDecode = 12,   // arg = batch size
  kMerge = 13,         // arg = coalesced weight
  kProofClose = 14,    // arg = proof id (low 32 bits)
  kSnapshotCommit = 15,  // arg = shard index, arg2 = snapshot seq
  kHello = 16,           // arg = shard index, arg2 = peer mono_ns
};

const char* event_kind_name(EventKind kind);

// Fixed-width ring entry; the dump stores these verbatim.
struct RecorderEvent {
  std::uint64_t ts_ns = 0;  // CLOCK_MONOTONIC
  std::uint64_t trace_id = 0;
  std::uint64_t arg2 = 0;
  std::uint32_t arg = 0;
  std::uint16_t hop_path = 0;
  std::uint16_t kind = 0;
};
static_assert(sizeof(RecorderEvent) == 32);

// Decoded form of one dump file (also the merger's input).
struct RecorderDump {
  std::uint64_t pid = 0;
  std::uint64_t mono_ns = 0;  // flush-time clock pair: aligns timelines
  std::uint64_t real_ns = 0;
  std::string label;
  std::vector<std::string> names;  // span/site name table; arg indexes this
  struct ThreadEvents {
    std::uint32_t tid = 0;
    std::vector<RecorderEvent> events;  // oldest first
  };
  std::vector<ThreadEvents> threads;
};

// Pure codec. decode validates structure and the trailing checksum and
// returns nullopt on any malformed input — truncation, bit flips, hostile
// lengths (never crashes, never over-allocates; fuzzed in tests).
Bytes encode_recorder_dump(const RecorderDump& dump);
std::optional<RecorderDump> decode_recorder_dump(const Bytes& bytes);

class Recorder {
 public:
  static Recorder& global();

  static bool enabled() {
    return detail_enabled().load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on);

  // Appends one event to the calling thread's ring (no-op when disabled).
  static void record(EventKind kind, TraceContext ctx, std::uint32_t arg = 0,
                     std::uint64_t arg2 = 0) {
    if (!enabled()) return;
    global().record_impl(kind, ctx, arg, arg2);
  }

  // Registers `name` (a string literal or otherwise immortal string) in the
  // dump's name table and returns its id — span sites call this once.
  std::uint32_t intern_name(const char* name);

  // Process label rendered into dumps ("router", "shard2", ...).
  void set_label(const char* label);

  // Copies every thread's ring into a decoded dump (ordinary, non-signal
  // path; takes the registration lock).
  RecorderDump snapshot() const;

  // snapshot() + encode + atomic_write_file. False on I/O failure.
  bool flush_to_file(const std::string& path) const;

  // Installs a handler on SIGTERM/SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL that
  // writes the dump to `path` using only async-signal-safe calls, then
  // re-raises with the default disposition. `path` must fit kPathMax.
  static constexpr std::size_t kPathMax = 512;
  void install_signal_flush(const std::string& path);

  // Async-signal-safe: writes the dump format to `fd`. Exposed for the
  // signal-path test; ordinary callers use flush_to_file.
  void flush_fd(int fd) const;

  // Test isolation: resets every registered ring's head (drops buffered
  // events; rings and the name table stay registered). Callers must ensure
  // no thread is concurrently recording.
  void clear();

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

 private:
  Recorder() = default;

  static std::atomic<bool>& detail_enabled();
  static void signal_flush_handler(int signo);
  void record_impl(EventKind kind, TraceContext ctx, std::uint32_t arg,
                   std::uint64_t arg2);

  // Writes the whole dump format into `sink` without taking mu_ — shared by
  // flush_fd (signal path) and snapshot (Bytes path).
  void emit(detail::DumpSink& sink) const;

  // Single-writer ring: the owner thread stores the event then publishes
  // head with release; readers (flush, possibly from another thread or a
  // signal handler) acquire head and copy. A reader racing a live writer
  // can see a torn oldest event; the postmortem reader tolerates that (the
  // dump checksum covers the file, not the ring).
  static constexpr std::size_t kRingCapacity = 1u << 15;  // 1 MiB / thread
  struct Ring {
    std::uint32_t tid = 0;
    std::atomic<std::uint64_t> head{0};
    RecorderEvent events[kRingCapacity];
  };

  Ring* ring_for_thread();

  static constexpr std::size_t kMaxRings = 64;
  static constexpr std::size_t kMaxNames = 512;

  // Guards registration (rings, names, label); the signal handler and the
  // record path never take it.
  mutable std::mutex mu_;

  // Fixed-size tables so the signal handler can walk them without locks.
  Ring* rings_[kMaxRings] = {};
  std::atomic<std::uint32_t> ring_count_{0};
  const char* names_[kMaxNames] = {};
  std::atomic<std::uint32_t> name_count_{0};
  char label_[64] = {};
  char signal_path_[kPathMax] = {};
};

}  // namespace softborg::obs
