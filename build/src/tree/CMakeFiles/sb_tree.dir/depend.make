# Empty dependencies file for sb_tree.
# This may be replaced when dependencies are built.
