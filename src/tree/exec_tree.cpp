#include "tree/exec_tree.h"

#include <algorithm>

#include "common/check.h"

namespace softborg {

std::uint32_t ExecTree::push_node() {
  const std::uint32_t id = static_cast<std::uint32_t>(visits_.size());
  visits_.push_back(0);
  parent_.push_back(kNoNode);
  parent_site_.push_back(0);
  parent_dir_.push_back(0);
  edges_.emplace_back();
  infeasible_head_.push_back(kNoNode);
  outcome_head_.push_back(kNoNode);
  crash_.push_back(kNoNode);
  open_.push_back(0);
  sub_nodes_.push_back(1);
  sub_leaves_.push_back(0);
  return id;
}

std::uint32_t ExecTree::find_child(std::uint32_t node, std::uint32_t site,
                                   bool dir) const {
  const std::uint64_t key = edge_key(site, dir);
  const EdgeCell* cell = &edges_[node];
  if (cell->key == kNoKey) return kNoNode;
  while (true) {
    if (cell->key == key) return cell->child;
    if (cell->next == kNoNode) return kNoNode;
    cell = &edge_pool_[cell->next];
  }
}

bool ExecTree::is_infeasible(std::uint32_t node, std::uint32_t site,
                             bool dir) const {
  for (std::uint32_t link = infeasible_head_[node]; link != kNoNode;
       link = marks_[link].next) {
    if (marks_[link].site == site && marks_[link].dir == dir) return true;
  }
  return false;
}

void ExecTree::append_edge(std::uint32_t node, std::uint32_t site, bool dir,
                           std::uint32_t child) {
  const std::uint64_t key = edge_key(site, dir);
  EdgeCell* cell = &edges_[node];
  if (cell->key == kNoKey) {
    cell->key = key;
    cell->child = child;
    return;
  }
  while (cell->next != kNoNode) cell = &edge_pool_[cell->next];
  const std::uint32_t link = static_cast<std::uint32_t>(edge_pool_.size());
  // Link before pushing: the push may reallocate the pool `cell` points into.
  cell->next = link;
  edge_pool_.push_back({key, child, kNoNode});
}

void ExecTree::append_mark(std::uint32_t node, std::uint32_t site, bool dir) {
  const std::uint32_t link = static_cast<std::uint32_t>(marks_.size());
  marks_.push_back({site, dir, kNoNode});
  if (infeasible_head_[node] == kNoNode) {
    infeasible_head_[node] = link;
    return;
  }
  std::uint32_t tail = infeasible_head_[node];
  while (marks_[tail].next != kNoNode) tail = marks_[tail].next;
  marks_[tail].next = link;
}

bool ExecTree::record_outcome(std::uint32_t node, Outcome outcome,
                              std::uint64_t weight) {
  std::uint32_t tail = kNoNode;
  for (std::uint32_t link = outcome_head_[node]; link != kNoNode;
       link = outcomes_[link].next) {
    if (outcomes_[link].outcome == outcome) {
      outcomes_[link].count += weight;
      return false;
    }
    tail = link;
  }
  const std::uint32_t link = static_cast<std::uint32_t>(outcomes_.size());
  outcomes_.push_back({outcome, weight, kNoNode});
  outcome_leaf_counts_[static_cast<std::size_t>(outcome)]++;
  if (tail == kNoNode) {
    const bool first = outcome_head_[node] == kNoNode;
    outcome_head_[node] = link;
    return first;  // brand-new leaf iff the chain was empty
  }
  outcomes_[tail].next = link;
  return false;
}

std::uint32_t ExecTree::site_open(std::uint32_t node,
                                  std::uint32_t site) const {
  const bool seen_true = find_child(node, site, true) != kNoNode;
  const bool seen_false = find_child(node, site, false) != kNoNode;
  if (seen_true == seen_false) return 0;  // both observed, or site unknown
  const bool missing = !seen_true;
  return is_infeasible(node, site, missing) ? 0u : 1u;
}

void ExecTree::bubble(std::uint32_t from, std::int64_t open_delta,
                      std::uint32_t nodes_delta, std::uint32_t leaves_delta) {
  for (std::uint32_t cur = from; cur != kNoNode; cur = parent_[cur]) {
    open_[cur] = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(open_[cur]) + open_delta);
    sub_nodes_[cur] += nodes_delta;
    sub_leaves_[cur] += leaves_delta;
  }
}

ExecTree::MergeResult ExecTree::add_path(
    const std::vector<SymDecision>& decisions, Outcome outcome,
    const std::optional<CrashInfo>& crash, std::uint64_t weight) {
  MergeResult result;
  if (weight == 0) return result;
  std::uint32_t cur = 0;
  visits_[0] += weight;

  std::size_t depth = 0;
  // Walk the shared prefix — the LCA is where we stop matching.
  for (; depth < decisions.size(); ++depth) {
    const auto& d = decisions[depth];
    const std::uint32_t child = find_child(cur, d.site, d.taken);
    if (child == kNoNode) break;
    cur = child;
    visits_[cur] += weight;
  }
  result.lca_depth = depth;
  const std::uint32_t lca = cur;
  const std::uint32_t pasted =
      static_cast<std::uint32_t>(decisions.size() - depth);

  if (pasted > 0) {
    // The LCA's branch site gains its first pasted direction: its open count
    // can move either way (0→1 on a fresh site, 1→0 when the suffix supplies
    // the missing direction), so measure it before and after.
    const std::uint32_t site0 = decisions[depth].site;
    const std::int64_t open_before = site_open(lca, site0);
    const std::uint32_t first = static_cast<std::uint32_t>(visits_.size());
    for (; depth < decisions.size(); ++depth) {
      const auto& d = decisions[depth];
      const std::uint32_t child = push_node();
      append_edge(cur, d.site, d.taken, child);
      parent_[child] = cur;
      parent_site_[child] = d.site;
      parent_dir_[child] = d.taken ? 1 : 0;
      cur = child;
      visits_[cur] += weight;
      result.new_nodes++;
    }
    // The pasted chain's aggregates are closed-form: node first+t heads a
    // chain of pasted-t nodes, each non-terminal one contributing one open
    // (its sibling direction is unexplored).
    for (std::uint32_t t = 0; t < pasted; ++t) {
      open_[first + t] = pasted - 1 - t;
      sub_nodes_[first + t] = pasted - t;
    }
    const std::int64_t open_delta =
        site_open(lca, site0) - open_before + (pasted - 1);
    bubble(lca, open_delta, pasted, 0);
  }

  // Terminal bookkeeping.
  const bool new_leaf = record_outcome(cur, outcome, weight);
  if (new_leaf) {
    num_leaves_++;
    result.new_path = true;
    bubble(cur, 0, 0, 1);
  }
  if (crash.has_value() && crash_[cur] == kNoNode) {
    crash_[cur] = static_cast<std::uint32_t>(crash_pool_.size());
    crash_pool_.push_back(*crash);
  }
  result.leaf = cur;
  return result;
}

std::uint32_t ExecTree::node_at(const std::vector<SymDecision>& prefix) const {
  std::uint32_t cur = 0;
  for (const auto& d : prefix) {
    cur = find_child(cur, d.site, d.taken);
    if (cur == kNoNode) return kNoNode;
  }
  return cur;
}

std::vector<SymDecision> ExecTree::path_to(std::uint32_t node) const {
  std::vector<SymDecision> path;
  for (std::uint32_t cur = node; parent_[cur] != kNoNode;
       cur = parent_[cur]) {
    path.push_back({parent_site_[cur], parent_dir_[cur] != 0});
  }
  std::reverse(path.begin(), path.end());
  return path;
}

bool ExecTree::mark_infeasible(const std::vector<SymDecision>& prefix,
                               std::uint32_t site, bool dir,
                               std::optional<std::uint32_t> node_hint) {
  std::uint32_t cur = 0;
  if (node_hint.has_value() && *node_hint < visits_.size()) {
    cur = *node_hint;
  } else {
    cur = node_at(prefix);
    if (cur == kNoNode) return false;
  }
  // The node must actually branch on `site` in the other direction —
  // otherwise this infeasibility claim is about a point we know nothing of.
  if (find_child(cur, site, !dir) == kNoNode) return false;
  if (!is_infeasible(cur, site, dir)) {
    const std::int64_t open_before = site_open(cur, site);
    append_mark(cur, site, dir);
    const std::int64_t open_delta = site_open(cur, site) - open_before;
    if (open_delta != 0) bubble(cur, open_delta, 0, 0);
  }
  return true;
}

std::uint64_t ExecTree::paths_with_outcome(Outcome o) const {
  return outcome_leaf_counts_[static_cast<std::size_t>(o)];
}

std::optional<std::vector<SymDecision>> ExecTree::find_path_with_outcome(
    Outcome o) const {
  if (paths_with_outcome(o) == 0) return std::nullopt;
  std::vector<SymDecision> prefix;
  // Iterative DFS carrying the prefix.
  struct Item {
    std::uint32_t idx;
    std::size_t depth;
    SymDecision via;
  };
  std::vector<Item> stack{{0, 0, {}}};
  bool first = true;
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    prefix.resize(item.depth);
    if (!first) prefix.push_back(item.via);
    first = false;
    for (std::uint32_t link = outcome_head_[item.idx]; link != kNoNode;
         link = outcomes_[link].next) {
      if (outcomes_[link].outcome == o) return prefix;
    }
    for_each_edge(item.idx, [&](const Edge& e) {
      stack.push_back({e.child, prefix.size(), {e.site, e.dir}});
    });
  }
  return std::nullopt;
}

std::vector<ExecTree::Frontier> ExecTree::frontier(
    std::size_t max_items) const {
  // Phase 1: enumerate (node, site, direction) hits in the same pruned
  // preorder the original full DFS produced — subtrees with open_ == 0
  // cannot contribute and are skipped, so this is O(open regions), and no
  // prefixes are materialized yet.
  struct Hit {
    std::uint32_t node;
    std::uint32_t site;
    bool direction;
    std::uint64_t visits;
  };
  std::vector<Hit> hits;
  if (open_[0] > 0) {
    std::vector<std::uint32_t> stack{0};
    std::vector<std::uint32_t> kids;
    while (!stack.empty()) {
      const std::uint32_t n = stack.back();
      stack.pop_back();
      for_each_edge(n, [&](const Edge& e) {
        const bool other = !e.dir;
        if (find_child(n, e.site, other) == kNoNode &&
            !is_infeasible(n, e.site, other)) {
          hits.push_back({n, e.site, other, visits_[n]});
        }
      });
      kids.clear();
      for_each_edge(n, [&](const Edge& e) {
        if (open_[e.child] > 0) kids.push_back(e.child);
      });
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        stack.push_back(*it);
      }
    }
  }
  // Hottest-first; stable so preorder breaks ties, as before.
  std::stable_sort(hits.begin(), hits.end(),
                   [](const Hit& a, const Hit& b) {
                     return a.visits > b.visits;
                   });
  if (hits.size() > max_items) hits.resize(max_items);
  // Phase 2: reconstruct prefixes via parent links for the survivors only —
  // a budgeted frontier(64) on a huge tree builds exactly 64 prefixes.
  std::vector<Frontier> out;
  out.reserve(hits.size());
  for (const auto& h : hits) {
    Frontier f;
    f.prefix = path_to(h.node);
    f.site = h.site;
    f.direction = h.direction;
    f.parent_visits = h.visits;
    f.node = h.node;
    out.push_back(std::move(f));
  }
  return out;
}

std::optional<ExecTree::SubtreeStats> ExecTree::stats_at(
    const std::vector<SymDecision>& prefix) const {
  const std::uint32_t node = node_at(prefix);
  if (node == kNoNode) return std::nullopt;
  SubtreeStats stats;
  stats.visits = visits_[node];
  stats.leaves = sub_leaves_[node];
  stats.nodes = sub_nodes_[node];
  stats.open_frontiers = open_[node];
  return stats;
}

void ExecTree::rebuild_aggregates() {
  num_leaves_ = 0;
  std::fill(outcome_leaf_counts_, outcome_leaf_counts_ + kNumOutcomes, 0u);
  // Children always carry larger indices than their parent, so one reverse
  // pass sees every child before its parent.
  for (std::size_t i = visits_.size(); i-- > 0;) {
    const std::uint32_t id = static_cast<std::uint32_t>(i);
    std::uint32_t open = 0;
    std::uint32_t nodes = 1;
    std::uint32_t leaves = 0;
    for_each_edge(id, [&](const Edge& e) {
      const bool other = !e.dir;
      if (find_child(id, e.site, other) == kNoNode &&
          !is_infeasible(id, e.site, other)) {
        open++;
      }
      open += open_[e.child];
      nodes += sub_nodes_[e.child];
      leaves += sub_leaves_[e.child];
    });
    if (outcome_head_[id] != kNoNode) {
      leaves++;
      num_leaves_++;
    }
    for (std::uint32_t link = outcome_head_[id]; link != kNoNode;
         link = outcomes_[link].next) {
      outcome_leaf_counts_[static_cast<std::size_t>(
          outcomes_[link].outcome)]++;
    }
    open_[id] = open;
    sub_nodes_[id] = nodes;
    sub_leaves_[id] = leaves;
  }
}

std::string ExecTree::to_string() const {
  std::string out;
  struct Item {
    std::uint32_t idx;
    int depth;
  };
  std::vector<Item> stack{{0, 0}};
  std::vector<Edge> scratch;
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    out.append(static_cast<std::size_t>(item.depth) * 2, ' ');
    out += "node visits=" + std::to_string(visits_[item.idx]);
    for (std::uint32_t link = outcome_head_[item.idx]; link != kNoNode;
         link = outcomes_[link].next) {
      out += std::string(" ") + outcome_name(outcomes_[link].outcome) + "x" +
             std::to_string(outcomes_[link].count);
    }
    out += "\n";
    scratch.clear();
    for_each_edge(item.idx, [&](const Edge& e) { scratch.push_back(e); });
    for (auto it = scratch.rbegin(); it != scratch.rend(); ++it) {
      out.append(static_cast<std::size_t>(item.depth) * 2 + 1, ' ');
      out += "s" + std::to_string(it->site) + (it->dir ? "/T" : "/F") + "\n";
      stack.push_back({it->child, item.depth + 1});
    }
  }
  return out;
}

}  // namespace softborg
