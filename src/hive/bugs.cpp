#include "hive/bugs.h"

#include <algorithm>
#include <functional>
#include <set>

#include "common/check.h"
#include "trace/codec.h"

namespace softborg {

const char* bug_kind_name(BugKind k) {
  switch (k) {
    case BugKind::kCrash: return "crash";
    case BugKind::kDeadlock: return "deadlock";
    case BugKind::kScheduleAssert: return "schedule-assert";
    case BugKind::kHang: return "hang";
  }
  return "?";
}

std::string Bug::describe() const {
  std::string s = std::string(bug_kind_name(kind)) + " in program " +
                  std::to_string(program.value);
  if (crash.has_value()) {
    s += std::string(": ") + crash_kind_name(crash->kind) + " at pc " +
         std::to_string(crash->pc);
  }
  if (!cycle_locks.empty()) {
    s += ": lock cycle {";
    for (std::size_t i = 0; i < cycle_locks.size(); ++i) {
      if (i > 0) s += ",";
      s += std::to_string(cycle_locks[i]);
    }
    s += "}";
  }
  s += " (" + std::to_string(occurrences) + " occurrences)";
  return s;
}

void LockOrderAnalyzer::add_trace(const Trace& t) {
  // Reconstruct per-thread held sets from the event stream.
  std::map<std::uint8_t, std::vector<std::uint16_t>> held;
  std::set<std::pair<std::uint16_t, std::uint16_t>> seen;
  for (const auto& ev : t.lock_events) {
    auto& h = held[ev.thread];
    if (ev.acquire) {
      for (auto lock : h) {
        if (lock != ev.lock && seen.insert({lock, ev.lock}).second) {
          edges_[lock].push_back(ev.lock);
        }
      }
      h.push_back(ev.lock);
    } else {
      auto it = std::find(h.begin(), h.end(), ev.lock);
      if (it != h.end()) h.erase(it);
    }
  }
  // A deadlocked trace's blocked requests never became acquisitions; the
  // wait-for cycle itself is still visible: each blocked thread's pending
  // request edge comes from its held locks at trace end. Those requests are
  // not in lock_events (no acquire happened), so the caller should also
  // feed deadlock_cycle information when available — handled by the hive.
  for (auto& [from, tos] : edges_) {
    std::sort(tos.begin(), tos.end());
    tos.erase(std::unique(tos.begin(), tos.end()), tos.end());
  }
}

std::size_t LockOrderAnalyzer::num_edges() const {
  std::size_t n = 0;
  for (const auto& [from, tos] : edges_) n += tos.size();
  return n;
}

namespace {
// Canonical rotation: cycle starts at its smallest element.
std::vector<std::uint16_t> canonical(std::vector<std::uint16_t> cycle) {
  const auto min_it = std::min_element(cycle.begin(), cycle.end());
  std::rotate(cycle.begin(), min_it, cycle.end());
  return cycle;
}
}  // namespace

std::vector<std::vector<std::uint16_t>> LockOrderAnalyzer::cycles() const {
  std::vector<std::vector<std::uint16_t>> out;
  std::set<std::vector<std::uint16_t>> seen;

  // Bounded DFS from every node; lock counts are small.
  std::vector<std::uint16_t> path;
  std::set<std::uint16_t> on_path;

  std::function<void(std::uint16_t, std::uint16_t)> dfs =
      [&](std::uint16_t start, std::uint16_t cur) {
        auto it = edges_.find(cur);
        if (it == edges_.end()) return;
        for (std::uint16_t next : it->second) {
          if (next == start && path.size() >= 2) {
            auto cycle = canonical(path);
            if (seen.insert(cycle).second) out.push_back(cycle);
            continue;
          }
          if (on_path.count(next) != 0 || next < start) continue;
          path.push_back(next);
          on_path.insert(next);
          dfs(start, next);
          on_path.erase(next);
          path.pop_back();
        }
      };

  for (const auto& [start, tos] : edges_) {
    path = {start};
    on_path = {start};
    dfs(start, start);
  }
  return out;
}

namespace {

// Signature hash shared by the trace and sighting paths; `t` is consulted
// only for the deadlock lock-set (the one signature needing payload data).
std::uint64_t signature_key(ProgramId program, Outcome outcome,
                            const std::optional<CrashInfo>& crash,
                            const Trace* t) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(program.value);
  mix(static_cast<std::uint64_t>(outcome));
  if (outcome == Outcome::kCrash && crash.has_value()) {
    mix(static_cast<std::uint64_t>(crash->kind));
    mix(crash->pc);
    mix(static_cast<std::uint64_t>(crash->detail));
  } else if (outcome == Outcome::kDeadlock) {
    // Signature: the set of locks involved in the trace's lock events.
    SB_CHECK(t != nullptr);
    std::set<std::uint16_t> locks;
    for (const auto& ev : t->lock_events) locks.insert(ev.lock);
    for (auto l : locks) mix(l);
  }
  return h;
}

}  // namespace

std::uint64_t BugTracker::key_of(const Trace& t) const {
  return signature_key(t.program, t.outcome, t.crash, &t);
}

Bug* BugTracker::record(const Trace& t) {
  if (t.outcome == Outcome::kOk) return nullptr;

  const std::uint64_t key = key_of(t);
  auto it = index_.find(key);
  if (it != index_.end()) {
    Bug& bug = bugs_[it->second];
    bug.occurrences++;
    bug.last_day = std::max(bug.last_day, t.day);
    return &bug;
  }

  Bug bug;
  bug.id = BugId(next_id_++);
  bug.program = t.program;
  bug.occurrences = 1;
  bug.first_day = bug.last_day = t.day;
  bug.exemplar = t;
  switch (t.outcome) {
    case Outcome::kCrash:
      bug.kind = BugKind::kCrash;
      bug.crash = t.crash;
      break;
    case Outcome::kDeadlock: {
      bug.kind = BugKind::kDeadlock;
      std::set<std::uint16_t> locks;
      for (const auto& ev : t.lock_events) locks.insert(ev.lock);
      bug.cycle_locks.assign(locks.begin(), locks.end());
      break;
    }
    case Outcome::kHang:
    case Outcome::kUserKilled:
      bug.kind = BugKind::kHang;
      break;
    case Outcome::kOk:
      SB_CHECK(false);
  }
  index_[key] = bugs_.size();
  bugs_.push_back(std::move(bug));
  return &bugs_.back();
}

Bug* BugTracker::record(const BugSighting& s) {
  if (s.outcome == Outcome::kOk) return nullptr;
  SB_CHECK(s.outcome != Outcome::kDeadlock);  // needs the full trace

  const std::uint64_t key = signature_key(s.program, s.outcome, s.crash,
                                          nullptr);
  auto it = index_.find(key);
  if (it != index_.end()) {
    Bug& bug = bugs_[it->second];
    bug.occurrences++;
    bug.last_day = std::max(bug.last_day, s.day);
    return &bug;
  }

  Bug bug;
  bug.id = BugId(next_id_++);
  bug.program = s.program;
  bug.occurrences = 1;
  bug.first_day = bug.last_day = s.day;
  bug.kind = s.outcome == Outcome::kCrash ? BugKind::kCrash : BugKind::kHang;
  if (s.outcome == Outcome::kCrash) bug.crash = s.crash;
  index_[key] = bugs_.size();
  bugs_.push_back(std::move(bug));
  return &bugs_.back();
}

std::vector<Bug*> BugTracker::open_bugs() {
  std::vector<Bug*> out;
  for (auto& bug : bugs_) {
    if (!bug.fixed) out.push_back(&bug);
  }
  return out;
}

Bug* BugTracker::find(BugId id) {
  for (auto& bug : bugs_) {
    if (bug.id == id) return &bug;
  }
  return nullptr;
}

void BugTracker::mark_fixed(BugId id, FixId fix) {
  Bug* bug = find(id);
  SB_CHECK(bug != nullptr);
  bug->fixed = true;
  bug->fix = fix;
}

void BugTracker::mark_schedule_dependent(BugId id) {
  Bug* bug = find(id);
  SB_CHECK(bug != nullptr);
  if (bug->kind == BugKind::kCrash) bug->kind = BugKind::kScheduleAssert;
}

std::size_t BugTracker::count(BugKind kind) const {
  std::size_t n = 0;
  for (const auto& bug : bugs_) {
    if (bug.kind == kind) n++;
  }
  return n;
}

void LockOrderAnalyzer::save_state(Bytes& out) const {
  put_varint(out, edges_.size());
  for (const auto& [from, targets] : edges_) {
    put_varint(out, from);
    put_varint(out, targets.size());
    for (const std::uint16_t to : targets) put_varint(out, to);
  }
}

bool LockOrderAnalyzer::load_state(StateReader& r) {
  edges_.clear();
  const std::uint64_t n = r.count(2);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    const std::uint64_t from = r.u64_max(0xffff);
    if (i > 0 && from <= prev) r.fail();  // map keys strictly ascend
    prev = from;
    auto& targets = edges_[static_cast<std::uint16_t>(from)];
    const std::uint64_t n_targets = r.count();
    targets.reserve(n_targets);
    for (std::uint64_t t = 0; t < n_targets && r.ok(); ++t) {
      targets.push_back(static_cast<std::uint16_t>(r.u64_max(0xffff)));
    }
  }
  return r.ok();
}

void BugTracker::save_state(Bytes& out) const {
  put_varint(out, bugs_.size());
  for (const Bug& bug : bugs_) {
    put_varint(out, bug.id.value);
    put_varint(out, bug.program.value);
    put_varint(out, static_cast<std::uint64_t>(bug.kind));
    put_bool(out, bug.crash.has_value());
    if (bug.crash) {
      put_varint(out, static_cast<std::uint64_t>(bug.crash->kind));
      put_varint(out, bug.crash->pc);
      put_varint_signed(out, bug.crash->detail);
    }
    put_varint(out, bug.cycle_locks.size());
    for (const std::uint16_t lock : bug.cycle_locks) put_varint(out, lock);
    put_varint(out, bug.occurrences);
    put_varint(out, bug.first_day);
    put_varint(out, bug.last_day);
    put_blob(out, encode_trace(bug.exemplar));
    put_bool(out, bug.fixed);
    put_varint(out, bug.fix.value);
    put_varint(out, bug.fixed_day);
  }
  // The signature index, sorted by key for deterministic bytes.
  std::vector<std::pair<std::uint64_t, std::size_t>> index(index_.begin(),
                                                           index_.end());
  std::sort(index.begin(), index.end());
  put_varint(out, index.size());
  for (const auto& [key, idx] : index) {
    put_varint(out, key);
    put_varint(out, idx);
  }
  put_varint(out, next_id_);
}

bool BugTracker::load_state(StateReader& r) {
  bugs_.clear();
  index_.clear();
  const std::uint64_t n_bugs = r.count(8);
  bugs_.reserve(n_bugs);
  for (std::uint64_t i = 0; i < n_bugs && r.ok(); ++i) {
    Bug bug;
    bug.id = BugId(r.u64());
    bug.program = ProgramId(r.u64());
    bug.kind = static_cast<BugKind>(r.u64_max(3));
    if (r.boolean()) {
      CrashInfo crash;
      crash.kind = static_cast<CrashKind>(r.u64_max(3));
      crash.pc = r.u32();
      crash.detail = r.i64();
      bug.crash = crash;
    }
    const std::uint64_t n_locks = r.count();
    bug.cycle_locks.reserve(n_locks);
    for (std::uint64_t l = 0; l < n_locks && r.ok(); ++l) {
      bug.cycle_locks.push_back(static_cast<std::uint16_t>(r.u64_max(0xffff)));
    }
    bug.occurrences = r.u64();
    bug.first_day = r.u64();
    bug.last_day = r.u64();
    Bytes wire;
    r.blob(wire);
    if (r.ok()) {
      // A default exemplar (occurrences recorded via scalar sightings before
      // the first decode) encodes and decodes like any other trace.
      auto exemplar = decode_trace(wire);
      if (!exemplar) {
        r.fail();
        return false;
      }
      bug.exemplar = std::move(*exemplar);
    }
    bug.fixed = r.boolean();
    bug.fix = FixId(r.u64());
    bug.fixed_day = r.u64();
    if (r.ok() && bug.id.value == 0) r.fail();  // ids start at 1
    bugs_.push_back(std::move(bug));
  }
  const std::uint64_t n_index = r.count(2);
  index_.reserve(n_index);
  std::uint64_t prev_key = 0;
  for (std::uint64_t i = 0; i < n_index && r.ok(); ++i) {
    const std::uint64_t key = r.u64();
    if (i > 0 && key <= prev_key) r.fail();  // sorted, unique
    prev_key = key;
    const std::uint64_t idx = r.u64();
    if (r.ok() && idx >= bugs_.size()) {
      r.fail();  // index points past the database
      return false;
    }
    index_.emplace(key, static_cast<std::size_t>(idx));
  }
  next_id_ = r.u64();
  if (r.ok() && next_id_ <= bugs_.size()) r.fail();  // ids are 1-based, dense
  return r.ok();
}

}  // namespace softborg
