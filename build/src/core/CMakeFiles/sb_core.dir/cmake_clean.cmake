file(REMOVE_RECURSE
  "CMakeFiles/sb_core.dir/world.cpp.o"
  "CMakeFiles/sb_core.dir/world.cpp.o.d"
  "libsb_core.a"
  "libsb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
