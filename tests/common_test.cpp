#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/bitvec.h"
#include "common/flat_hash.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/varint.h"

namespace softborg {
namespace {

// ---------------------------------------------------------------- Rng ------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) same++;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NextInSingletonRange) {
  Rng r(3);
  EXPECT_EQ(r.next_in(42, 42), 42);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, SplitIsIndependentAndDeterministic) {
  Rng a(99), b(99);
  Rng ca = a.split(1), cb = b.split(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(ca(), cb());
  Rng c1 = a.split(2), c2 = a.split(2);
  // Different parent state => different children.
  EXPECT_NE(c1(), c2());
}

TEST(Rng, ApproximatelyUniformMean) {
  Rng r(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

// -------------------------------------------------------------- BitVec -----

TEST(BitVec, PushAndIndex) {
  BitVec v;
  v.push_back(true);
  v.push_back(false);
  v.push_back(true);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_TRUE(v[0]);
  EXPECT_FALSE(v[1]);
  EXPECT_TRUE(v[2]);
}

TEST(BitVec, CrossesWordBoundary) {
  BitVec v;
  for (int i = 0; i < 130; ++i) v.push_back(i % 3 == 0);
  ASSERT_EQ(v.size(), 130u);
  for (int i = 0; i < 130; ++i) EXPECT_EQ(v[i], i % 3 == 0) << i;
}

TEST(BitVec, SetOverwrites) {
  BitVec v(10);
  v.set(7, true);
  EXPECT_TRUE(v[7]);
  v.set(7, false);
  EXPECT_FALSE(v[7]);
}

TEST(BitVec, PopcountMatchesManualCount) {
  BitVec v;
  int expect = 0;
  Rng r(1);
  for (int i = 0; i < 500; ++i) {
    const bool bit = r.next_bool();
    v.push_back(bit);
    expect += bit;
  }
  EXPECT_EQ(v.popcount(), static_cast<std::size_t>(expect));
}

TEST(BitVec, CommonPrefixBasic) {
  BitVec a, b;
  for (bool bit : {true, true, false, true}) a.push_back(bit);
  for (bool bit : {true, true, true, true}) b.push_back(bit);
  EXPECT_EQ(a.common_prefix(b), 2u);
  EXPECT_EQ(b.common_prefix(a), 2u);
}

TEST(BitVec, CommonPrefixIdentical) {
  BitVec a;
  for (int i = 0; i < 100; ++i) a.push_back(i % 2 == 0);
  BitVec b = a;
  EXPECT_EQ(a.common_prefix(b), 100u);
}

TEST(BitVec, CommonPrefixAcrossWords) {
  BitVec a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(true);
    b.push_back(i != 150);
  }
  EXPECT_EQ(a.common_prefix(b), 150u);
}

TEST(BitVec, CommonPrefixEmpty) {
  BitVec a, b;
  a.push_back(true);
  EXPECT_EQ(a.common_prefix(b), 0u);
}

TEST(BitVec, HashDiffersOnSingleBitFlip) {
  BitVec a;
  for (int i = 0; i < 64; ++i) a.push_back(false);
  BitVec b = a;
  b.set(63, true);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(BitVec, HashDependsOnLength) {
  BitVec a, b;
  a.push_back(false);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(BitVec, FromWordsRoundTrip) {
  BitVec a;
  Rng r(2);
  for (int i = 0; i < 77; ++i) a.push_back(r.next_bool());
  BitVec b = BitVec::from_words(a.words(), a.size());
  EXPECT_EQ(a, b);
}

TEST(BitVec, ToStringRendersBits) {
  BitVec v;
  v.push_back(true);
  v.push_back(false);
  v.push_back(true);
  EXPECT_EQ(v.to_string(), "101");
}

// -------------------------------------------------------------- varint -----

TEST(Varint, RoundTripSmall) {
  Bytes b;
  put_varint(b, 0);
  put_varint(b, 1);
  put_varint(b, 127);
  put_varint(b, 128);
  std::size_t pos = 0;
  EXPECT_EQ(get_varint(b, pos), 0u);
  EXPECT_EQ(get_varint(b, pos), 1u);
  EXPECT_EQ(get_varint(b, pos), 127u);
  EXPECT_EQ(get_varint(b, pos), 128u);
  EXPECT_EQ(pos, b.size());
}

TEST(Varint, RoundTripLarge) {
  Bytes b;
  const std::uint64_t big = 0xffffffffffffffffULL;
  put_varint(b, big);
  std::size_t pos = 0;
  EXPECT_EQ(get_varint(b, pos), big);
}

TEST(Varint, RoundTripSweep) {
  for (std::uint64_t base : {1ULL, 7ULL, 300ULL, 1ULL << 20, 1ULL << 42}) {
    for (std::uint64_t delta = 0; delta < 3; ++delta) {
      Bytes b;
      put_varint(b, base + delta);
      std::size_t pos = 0;
      EXPECT_EQ(get_varint(b, pos), base + delta);
    }
  }
}

TEST(Varint, TruncatedInputReturnsNullopt) {
  Bytes b;
  put_varint(b, 1ULL << 40);
  b.pop_back();
  std::size_t pos = 0;
  EXPECT_FALSE(get_varint(b, pos).has_value());
}

TEST(Varint, SignedRoundTrip) {
  for (std::int64_t v : {0L, -1L, 1L, -1000000L, 1000000L, INT64_MIN,
                         INT64_MAX}) {
    Bytes b;
    put_varint_signed(b, v);
    std::size_t pos = 0;
    auto got = get_varint_signed(b, pos);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
  }
}

TEST(Varint, EmptyInputReturnsNullopt) {
  Bytes b;
  std::size_t pos = 0;
  EXPECT_FALSE(get_varint(b, pos).has_value());
}

// ------------------------------------------------------------- metrics -----

TEST(StatAccumulator, MeanAndVariance) {
  StatAccumulator s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(StatAccumulator, EmptyIsZero) {
  StatAccumulator s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StatAccumulator, MergeMatchesSequential) {
  StatAccumulator all, a, b;
  Rng r(4);
  for (int i = 0; i < 100; ++i) {
    const double x = r.next_double() * 10;
    all.add(x);
    (i < 50 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Histogram, PercentilesAreMonotone) {
  Histogram h;
  Rng r(6);
  for (int i = 0; i < 10000; ++i) h.add(r.next_double() * 1000);
  EXPECT_LE(h.percentile(50), h.percentile(90));
  EXPECT_LE(h.percentile(90), h.percentile(99));
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.add(42.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 42.0);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a, b;
  a.add(1);
  b.add(100);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
}

TEST(Histogram, PercentileInterpolatesWithinBucket) {
  // Three samples land in the same log2 bucket [8,16). The p50 target is
  // 1.5 of 3 samples, so linear interpolation reads the bucket's midpoint
  // instead of snapping to an edge.
  Histogram h;
  h.add(10.0);
  h.add(12.0);
  h.add(14.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 12.0);
  // The tail quantile interpolates past the samples but clamps to the
  // largest value actually seen — never past it to the bucket edge.
  EXPECT_DOUBLE_EQ(h.percentile(100), 14.0);
  EXPECT_LE(h.percentile(99), 14.0);
  // The head quantile stays at or above the bucket's lower edge.
  EXPECT_GE(h.percentile(1), 8.0);
}

TEST(Histogram, SumTracksAdds) {
  Histogram h;
  h.add(1.5);
  h.add(2.5);
  EXPECT_DOUBLE_EQ(h.sum(), 4.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

// Edge cases the exporters hit in practice: histograms that are empty (a
// span site never fired), hold one sample (fired once), or land every
// sample in one log2 bucket (a very steady stage).
TEST(Histogram, EmptyPercentilesAreZeroAtEveryQuantile) {
  Histogram h;
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 0.0) << p;
  }
  EXPECT_DOUBLE_EQ(h.max_seen(), 0.0);
}

TEST(Histogram, SingleSampleQuantilesClampToIt) {
  for (const double v : {0.0, 0.5, 1.0, 14.0, 1024.0, 1e12}) {
    Histogram h;
    h.add(v);
    // The top quantile is exactly the sample; every other one interpolates
    // within the sample's power-of-two bucket but may never pass the one
    // value actually seen (or leave the bucket downward past zero).
    EXPECT_DOUBLE_EQ(h.percentile(100), v) << v;
    double prev = 0.0;
    for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
      const double q = h.percentile(p);
      EXPECT_LE(q, v) << "v=" << v << " p=" << p;
      EXPECT_GE(q, 0.0) << "v=" << v << " p=" << p;
      EXPECT_GE(q, prev) << "v=" << v << " p=" << p;  // monotone in p
      prev = q;
    }
  }
  // Negative inputs clamp to the zero bucket.
  Histogram h;
  h.add(-5.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(Histogram, SingleBucketManySamplesStaysInsideBucketBounds) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.add(8.0 + (i % 8));  // all in [8,16)
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_GE(h.percentile(p), 8.0) << p;
    EXPECT_LE(h.percentile(p), h.max_seen()) << p;
  }
  EXPECT_DOUBLE_EQ(h.percentile(100), 15.0);
  // Monotone across the single bucket too.
  EXPECT_LE(h.percentile(10), h.percentile(90));
}

// Property: merging histograms is equivalent to adding every sample to one
// histogram — same counts, same buckets, same sum, same percentiles. This
// is what lets per-shard histograms aggregate without bias.
TEST(Histogram, MergeEquivalenceProperty) {
  Rng r(99);
  Histogram merged_target;
  Histogram parts[4];
  for (int i = 0; i < 4000; ++i) {
    const double v = r.next_double() * 5000.0;
    merged_target.add(v);
    parts[i % 4].add(v);
  }
  Histogram merged;
  for (const Histogram& p : parts) merged.merge(p);
  EXPECT_EQ(merged.count(), merged_target.count());
  // Sums accumulate in different orders; allow float reassociation slack.
  EXPECT_NEAR(merged.sum(), merged_target.sum(), 1e-6 * merged_target.sum());
  EXPECT_DOUBLE_EQ(merged.max_seen(), merged_target.max_seen());
  EXPECT_EQ(merged.bucket_counts(), merged_target.bucket_counts());
  for (double p : {1.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(merged.percentile(p), merged_target.percentile(p)) << p;
  }
}

// ---------------------------------------------------------- ThreadPool -----

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, DrainsOnDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&count] { count++; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, SingleThreadOrdering) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 8; ++i) {
    futs.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(ThreadPool, ManySmallTasksStress) {
  ThreadPool pool(8);
  std::atomic<std::uint64_t> sum{0};
  std::vector<std::future<void>> futs;
  futs.reserve(5000);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    futs.push_back(pool.submit([&sum, i] { sum += i; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 5000ULL * 4999 / 2);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto boom =
      pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(boom.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

// --------------------------------------------------------- parallel_for ----

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(&pool, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, NullPoolRunsInline) {
  std::vector<int> hits(100, 0);
  parallel_for(nullptr, hits.size(), [&](std::size_t i) { hits[i]++; });
  EXPECT_EQ(std::count(hits.begin(), hits.end(), 1), 100);
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(parallel_for(&pool, 200,
                            [&](std::size_t i) {
                              ran++;
                              if (i == 199) throw std::runtime_error("x");
                            }),
               std::runtime_error);
  // Every other chunk still completed before the rethrow (no dangling
  // captures; only the throwing chunk stops early, and 199 is its last
  // index anyway).
  EXPECT_EQ(ran.load(), 200);
}

// ----------------------------------------------------------- FlatU64Set ---

TEST(FlatU64Set, InsertReportsNovelty) {
  FlatU64Set set;
  EXPECT_TRUE(set.insert(7));
  EXPECT_FALSE(set.insert(7));
  EXPECT_TRUE(set.contains(7));
  EXPECT_FALSE(set.contains(8));
  EXPECT_EQ(set.size(), 1u);
}

TEST(FlatU64Set, ZeroIsAnOrdinaryKey) {
  // 0 marks empty slots internally; the API must still treat it as a value.
  FlatU64Set set;
  EXPECT_FALSE(set.contains(0));
  EXPECT_TRUE(set.insert(0));
  EXPECT_FALSE(set.insert(0));
  EXPECT_TRUE(set.contains(0));
  EXPECT_EQ(set.size(), 1u);
}

TEST(FlatU64Set, GrowsAndKeepsEverything) {
  FlatU64Set set;
  Rng r(17);
  std::set<std::uint64_t> model;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = r.next_below(4000);  // force duplicates
    EXPECT_EQ(set.insert(v), model.insert(v).second) << "i " << i;
  }
  EXPECT_EQ(set.size(), model.size());
  for (auto v : model) EXPECT_TRUE(set.contains(v));
}

TEST(FlatU64Set, ReserveDoesNotDisturbContents) {
  FlatU64Set set;
  for (std::uint64_t v = 1; v <= 100; ++v) set.insert(v);
  set.reserve(10000);
  EXPECT_EQ(set.size(), 100u);
  for (std::uint64_t v = 1; v <= 100; ++v) EXPECT_TRUE(set.contains(v));
}

TEST(FlatU64PtrMap, InsertKeepsFirstMapping) {
  int a = 1, b = 2;
  FlatU64PtrMap<int> map;
  EXPECT_EQ(map.find(5), nullptr);
  map.insert(5, &a);
  map.insert(5, &b);  // emplace semantics: the first mapping wins
  EXPECT_EQ(map.find(5), &a);
  EXPECT_EQ(map.find(6), nullptr);
}

TEST(FlatU64PtrMap, ManyKeysSurviveGrowth) {
  std::vector<int> values(2000);
  FlatU64PtrMap<int> map;
  for (std::size_t i = 0; i < values.size(); ++i) {
    map.insert(i * 0x9e3779b9ULL + 1, &values[i]);
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(map.find(i * 0x9e3779b9ULL + 1), &values[i]) << "i " << i;
  }
}

}  // namespace
}  // namespace softborg
