#include "privacy/anonymize.h"

namespace softborg {

Trace anonymize(const Trace& t, const AnonymizeConfig& config) {
  Trace out = t;
  if (config.strip_pod_id) {
    out.pod = config.pod_bucket_count > 0
                  ? PodId(t.pod.value % config.pod_bucket_count)
                  : PodId(0);
  }
  if (config.quantize_day) out.day = (t.day / 7) * 7;
  if (config.coarsen_syscalls) {
    for (auto& sc : out.syscalls) sc.call_index = 0;
  }
  if (config.bit_suppression > 0) {
    BitVec kept;
    for (std::size_t i = 0; i < t.branch_bits.size(); ++i) {
      if ((i + 1) % config.bit_suppression == 0) continue;  // drop n-th
      kept.push_back(t.branch_bits[i]);
    }
    out.branch_bits = kept;
  }
  return out;
}

bool has_identifiers(const Trace& t) { return t.pod.value != 0; }

std::vector<Trace> KAnonymityGate::add(Trace t) {
  const std::uint64_t key = t.branch_bits.hash();
  if (released_.count(key) != 0) return {std::move(t)};

  Bucket& bucket = buckets_[key];
  bucket.pods.insert(t.pod.value);
  bucket.pending.push_back(std::move(t));
  if (bucket.pods.size() < k_) return {};

  std::vector<Trace> out = std::move(bucket.pending);
  buckets_.erase(key);
  released_.insert(key);
  return out;
}

std::size_t KAnonymityGate::buffered() const {
  std::size_t n = 0;
  for (const auto& [key, bucket] : buckets_) n += bucket.pending.size();
  return n;
}

}  // namespace softborg
