// The collective execution tree (paper §3.2, Fig. 3).
//
// Every end-user execution, replayed into its decision stream (input-
// dependent branch directions), is one guaranteed-feasible root-to-leaf
// path. The hive merges these paths into a trie: walking the shared prefix
// finds the lowest common ancestor, and the divergent suffix is pasted in
// as new nodes. No constraint solving happens during merge — feasibility is
// inherited from the fact that the path actually executed.
//
// Beyond storage, the tree answers the hive's three questions:
//   * coverage  — how many distinct paths/nodes have been observed?
//   * frontier  — which (prefix, direction) pairs are still unexplored?
//     (these drive guidance and symbolic gap-filling, §3.3)
//   * complete  — is every direction either observed or proven infeasible?
//     (the precondition for publishing a proof)
//
// Edges are keyed by (branch site, direction) rather than direction alone,
// so interleaving-dependent multi-threaded decision streams merge cleanly.
//
// Storage (v2): an arena of structure-of-arrays node pools instead of the
// original node-of-vectors trie. Nodes are identified by their creation
// index (append-only, so ids are stable forever and double as walk hints
// and consumer-side keys). Per-node edge storage is inline for the common
// 0..2-edge case, spilling rare wider nodes (multi-threaded interleavings)
// into a shared overflow chain pool; infeasibility marks and leaf outcome
// counters live in shared chain pools too, so a node costs no heap
// allocations of its own.
//
// Aggregates are incremental: add_path and mark_infeasible bubble
// open-frontier counts, subtree node/leaf tallies, and per-outcome leaf
// censuses up the parent chain (O(depth) per mutation), so
//   * complete() and open_frontiers() are O(1) reads,
//   * frontier() visits only subtrees that still contain open directions
//     and reconstructs prefixes on demand via parent links (O(answer)),
//   * stats_at() is a prefix walk plus four array reads,
//   * paths_with_outcome() is a table lookup.
// Every traversal is iterative (explicit stack): a 20k-deep natural
// execution must not be a stack overflow (tests/tree_test.cpp pins this).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/varint.h"
#include "sym/executor.h"
#include "trace/trace.h"

namespace softborg {

class ExecTree {
 public:
  // "No such node": node ids are creation indices, bounded far below this.
  static constexpr std::uint32_t kNoNode = 0xffffffffu;

  explicit ExecTree(ProgramId program) : program_(program) { push_node(); }

  struct MergeResult {
    bool new_path = false;     // a previously unseen leaf
    std::size_t new_nodes = 0; // nodes pasted in
    std::size_t lca_depth = 0; // depth of the lowest common ancestor
    std::uint32_t leaf = 0;    // terminal node: a valid mark_infeasible hint
  };

  // Merges one decision stream ending with `outcome`. Idempotent for
  // already-present paths (only counters change). `weight` merges the same
  // execution `weight` times in one walk: because repeats of a present path
  // only bump visit/outcome counters, add_path(d, o, c, k) leaves the tree
  // byte-identical to k sequential calls — the batch pipeline leans on this
  // to coalesce traces whose replay memoized to the same decision stream.
  MergeResult add_path(const std::vector<SymDecision>& decisions,
                       Outcome outcome,
                       const std::optional<CrashInfo>& crash = std::nullopt,
                       std::uint64_t weight = 1);

  // Marks direction `dir` at the node reached by `prefix` as proven
  // infeasible (symbolic gap closure). Returns false if the prefix does not
  // lead to a node that branches on `site`. `node_hint` (MergeResult::leaf
  // or Frontier::node — valid forever, the tree is append-only) skips the
  // prefix re-walk.
  bool mark_infeasible(const std::vector<SymDecision>& prefix,
                       std::uint32_t site, bool dir,
                       std::optional<std::uint32_t> node_hint = std::nullopt);

  // ---- coverage -----------------------------------------------------------
  std::size_t num_paths() const { return num_leaves_; }
  std::size_t num_nodes() const { return visits_.size(); }
  std::uint64_t total_executions() const { return visits_[0]; }
  std::uint64_t paths_with_outcome(Outcome o) const;  // distinct leaves, O(1)

  // Decision path of some leaf with outcome `o`, if any (counterexamples).
  std::optional<std::vector<SymDecision>> find_path_with_outcome(
      Outcome o) const;

  // ---- frontier -----------------------------------------------------------
  struct Frontier {
    std::vector<SymDecision> prefix;  // decisions leading to the node
    std::uint32_t site = 0;           // branch site with a missing direction
    bool direction = false;           // the unexplored direction
    std::uint64_t parent_visits = 0;  // how "hot" this region is
    std::uint32_t node = 0;           // node reached by prefix (walk hint)
  };

  // Enumerates unexplored directions, hottest-first, up to `max_items`.
  // Prunes on the incremental subtree counts — only regions that still hold
  // open directions are visited — and materializes prefixes (via parent
  // links) only for the items actually returned.
  std::vector<Frontier> frontier(std::size_t max_items = SIZE_MAX) const;

  // Open directions in the whole tree: frontier().size() without the
  // enumeration. O(1); lets callers detect when a frontier budget clipped.
  std::size_t open_frontiers() const { return open_[0]; }

  // ---- completeness -------------------------------------------------------
  // True iff every observed branch site has both directions observed or
  // proven infeasible, recursively. An empty tree is not complete. O(1).
  bool complete() const { return visits_[0] > 0 && open_[0] == 0; }

  // ---- subtree statistics (portfolio allocation, §4) ----------------------
  struct SubtreeStats {
    std::uint64_t visits = 0;
    std::size_t leaves = 0;
    std::size_t nodes = 0;
    std::size_t open_frontiers = 0;
  };

  // Stats of the subtree reached by `prefix`; nullopt if absent. O(prefix).
  std::optional<SubtreeStats> stats_at(
      const std::vector<SymDecision>& prefix) const;

  // Node reached by `prefix` (kNoNode if absent). Ids are stable creation
  // indices — consumers may key on them (e.g. coop partitioning units).
  std::uint32_t node_at(const std::vector<SymDecision>& prefix) const;

  // Decision path from the root to `node`, reconstructed via parent links.
  std::vector<SymDecision> path_to(std::uint32_t node) const;

  ProgramId program() const { return program_; }

  // ---- persistence (see tree_codec.h) -------------------------------------
  enum class WireVersion : std::uint8_t {
    kV1 = 1,  // legacy node-of-vectors layout (compat: migration round-trip)
    kV2 = 2,  // parent-link layout with packed (site, dir) decisions
  };

  Bytes encode(WireVersion version = WireVersion::kV2) const;
  // Accepts both wire versions; validates structure (tree-shaped, child
  // indices strictly increasing, leaf census consistent) and rebuilds the
  // incremental aggregates.
  static std::optional<ExecTree> decode(const Bytes& bytes);

  bool operator==(const ExecTree& other) const;

  // Graphviz-ish debug rendering (small trees only).
  std::string to_string() const;

 private:
  friend struct TreeCodecAccess;  // tree_codec.cpp builder/walker

  // Decoded edge view handed to for_each_edge callbacks.
  struct Edge {
    std::uint32_t site = 0;
    std::uint32_t child = kNoNode;
    bool dir = false;
  };

  // Edge storage: one 16-byte cell per node inline in edges_, holding the
  // first (for chain nodes: only) edge; wider nodes link further cells
  // through the shared edge_pool_. The (site, direction) pair packs into a
  // single 64-bit key so the hot-path child lookup is one load and one
  // compare per edge.
  static constexpr std::uint64_t kNoKey = ~0ULL;
  struct EdgeCell {
    std::uint64_t key = kNoKey;    // (site << 1) | dir
    std::uint32_t child = kNoNode;
    std::uint32_t next = kNoNode;  // into edge_pool_
  };
  static constexpr std::uint64_t edge_key(std::uint32_t site, bool dir) {
    return (static_cast<std::uint64_t>(site) << 1) | (dir ? 1 : 0);
  }
  struct MarkLink {
    std::uint32_t site = 0;
    bool dir = false;
    std::uint32_t next = kNoNode;
  };
  struct OutcomeLink {
    Outcome outcome = Outcome::kOk;
    std::uint64_t count = 0;
    std::uint32_t next = kNoNode;
  };

  static constexpr std::size_t kNumOutcomes =
      static_cast<std::size_t>(Outcome::kUserKilled) + 1;

  std::uint32_t push_node();
  std::uint32_t find_child(std::uint32_t node, std::uint32_t site,
                           bool dir) const;
  bool is_infeasible(std::uint32_t node, std::uint32_t site, bool dir) const;
  void append_edge(std::uint32_t node, std::uint32_t site, bool dir,
                   std::uint32_t child);
  void append_mark(std::uint32_t node, std::uint32_t site, bool dir);
  // Outcome bookkeeping at a terminal node; returns true when this was the
  // node's first outcome (a brand-new leaf).
  bool record_outcome(std::uint32_t node, Outcome outcome,
                      std::uint64_t weight);

  // Calls f(const Edge&) for every edge of `node`, in insertion order
  // (which is ascending child order — children are appended after parents).
  template <typename F>
  void for_each_edge(std::uint32_t node, F&& f) const {
    const EdgeCell* cell = &edges_[node];
    if (cell->key == kNoKey) return;
    while (true) {
      f(Edge{static_cast<std::uint32_t>(cell->key >> 1), cell->child,
             (cell->key & 1) != 0});
      if (cell->next == kNoNode) break;
      cell = &edge_pool_[cell->next];
    }
  }

  // 1 if `site` at `node` has exactly one observed direction whose opposite
  // is neither observed nor proven infeasible — i.e. the site contributes
  // one open frontier. The local building block of the open_ aggregate.
  std::uint32_t site_open(std::uint32_t node, std::uint32_t site) const;

  // Adds the deltas to `from` and every ancestor up to the root.
  void bubble(std::uint32_t from, std::int64_t open_delta,
              std::uint32_t nodes_delta, std::uint32_t leaves_delta);

  // Recomputes open_/sub_nodes_/sub_leaves_/outcome census bottom-up
  // (decode path; children always carry larger indices than parents).
  void rebuild_aggregates();

  ProgramId program_;

  // ---- arena: one entry per node, indexed by creation order ---------------
  std::vector<std::uint64_t> visits_;
  std::vector<std::uint32_t> parent_;       // kNoNode at the root
  std::vector<std::uint32_t> parent_site_;  // decision on the parent edge
  std::vector<std::uint8_t> parent_dir_;
  std::vector<EdgeCell> edges_;
  std::vector<std::uint32_t> infeasible_head_;  // chain into marks_
  std::vector<std::uint32_t> outcome_head_;     // chain into outcomes_
  std::vector<std::uint32_t> crash_;            // into crash_pool_ or kNoNode
  // Incremental subtree aggregates (self included).
  std::vector<std::uint32_t> open_;       // open frontier directions
  std::vector<std::uint32_t> sub_nodes_;
  std::vector<std::uint32_t> sub_leaves_;

  // ---- shared pools --------------------------------------------------------
  std::vector<EdgeCell> edge_pool_;  // overflow cells past the first edge
  std::vector<MarkLink> marks_;
  std::vector<OutcomeLink> outcomes_;
  std::vector<CrashInfo> crash_pool_;

  std::size_t num_leaves_ = 0;
  std::uint64_t outcome_leaf_counts_[kNumOutcomes] = {};
};

}  // namespace softborg
