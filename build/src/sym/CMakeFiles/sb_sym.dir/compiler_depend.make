# Empty compiler generated dependencies file for sb_sym.
# This may be replaced when dependencies are built.
