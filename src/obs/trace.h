// Causal trace context for the distributed fleet (ISSUE 10 tentpole).
//
// A TraceContext names one end-user execution as it flows through the
// pipeline: a 64-bit causal trace id plus a 16-bit hop path recording which
// stages the trace has visited (pod emit → router ingress → shard admission
// → merge, four 4-bit hop codes, oldest shifted out first). The context is
// derived *deterministically* from the trace wire's own header
// (causal_trace_id mixes TraceId and ProgramId through a splitmix
// finalizer), so every process that sees the same wire computes the same
// causal id without coordination — and the dist frame header's v2 extension
// (dist/frame.h) carries the *accumulated* context across sockets, so a
// downstream process learns which hops the trace already took in processes
// it cannot observe.
//
// A thread-local "current context" lets stage instrumentation (SB_SPAN, the
// flight recorder) attach whatever it records to the trace being worked on
// without threading a parameter through every layer. Tracing is off by
// default; when set_tracing_enabled(false), no context is ever derived or
// attached and every wire byte stays identical to the untraced build (the
// PR 9 differential suites pin this).
#pragma once

#include <atomic>
#include <cstdint>

namespace softborg::obs {

// Pipeline stages a trace can visit; 4 bits each, packed into hop_path.
enum class Hop : std::uint8_t {
  kNone = 0,
  kPod = 1,      // emitted by a pod (or the workload generator standing in)
  kRouter = 2,   // admitted at the fleet ingress
  kShard = 3,    // admitted by the owning shard worker
  kMerge = 4,    // merged into the collective tree
  kProof = 5,    // touched by proof gap closure
  kExport = 6,   // serialized outward (snapshot, tree report)
};

struct TraceContext {
  std::uint64_t trace_id = 0;  // 0 = no context
  std::uint16_t hop_path = 0;  // up to 4 most recent hops, newest in low bits

  bool valid() const { return trace_id != 0; }
  bool operator==(const TraceContext&) const = default;
};

// Appends `hop` to the path (newest occupies the low nibble; the oldest of
// five falls off the top). Idempotent when the newest hop already is `hop`,
// so retry loops do not flood the path.
inline TraceContext with_hop(TraceContext ctx, Hop hop) {
  const auto code = static_cast<std::uint16_t>(hop);
  if ((ctx.hop_path & 0xf) != code) {
    ctx.hop_path = static_cast<std::uint16_t>((ctx.hop_path << 4) | code);
  }
  return ctx;
}

// True when `hop` appears anywhere in the recorded path.
bool has_hop(TraceContext ctx, Hop hop);

// Renders "pod>router>shard>merge" (oldest first) into a caller buffer of at
// least kHopPathStrMax bytes; returns `buf`. Allocation-free (used by the
// exporter and by tests).
inline constexpr std::size_t kHopPathStrMax = 4 * 8;
const char* hop_path_str(std::uint16_t hop_path, char* buf);

// The deterministic causal id every process derives from a trace wire's
// header: splitmix-style avalanche over (trace id, program id). Never 0.
std::uint64_t causal_trace_id(std::uint64_t trace_id,
                              std::uint64_t program_id);

// --- master switch ---------------------------------------------------------
// Default off. While off, instrumentation derives no contexts and the dist
// transport emits byte-identical v1 frames.
namespace detail {
extern std::atomic<bool> g_tracing_enabled;
}
inline bool tracing_enabled() {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}
void set_tracing_enabled(bool on);

// --- thread-local current context ------------------------------------------
TraceContext current_context();

// Installs `ctx` as the thread's current context for the enclosing scope
// (restores the previous one on destruction). Stage code uses this so spans
// and recorder events attach to the trace being processed.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

}  // namespace softborg::obs
