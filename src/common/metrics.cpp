#include "common/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace softborg {

void StatAccumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double StatAccumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

void StatAccumulator::merge(const StatAccumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_), nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

int Histogram::bucket_for(double v) {
  if (v < 1.0) return 0;
  int b = 1 + static_cast<int>(std::floor(std::log2(v)));
  return std::min(b, kBuckets - 1);
}

double Histogram::bucket_upper(int b) {
  if (b == 0) return 1.0;
  return std::pow(2.0, b);
}

double Histogram::bucket_lower(int b) {
  if (b == 0) return 0.0;
  return bucket_upper(b - 1);
}

void Histogram::add(double value) {
  if (value < 0) value = 0;
  buckets_[static_cast<std::size_t>(bucket_for(value))]++;
  ++count_;
  sum_ += value;
  max_seen_ = std::max(max_seen_, value);
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  max_seen_ = 0.0;
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  SB_CHECK(p >= 0.0 && p <= 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = buckets_[static_cast<std::size_t>(b)];
    if (in_bucket != 0 &&
        static_cast<double>(seen + in_bucket) >= target) {
      // Interpolate linearly within the bucket: returning the raw upper
      // bound quantized percentiles up to 2x (the bucket width).
      const double lo = bucket_lower(b);
      const double hi = bucket_upper(b);
      const double frac = std::clamp(
          (target - static_cast<double>(seen)) / static_cast<double>(in_bucket),
          0.0, 1.0);
      return std::min(lo + (hi - lo) * frac, max_seen_);
    }
    seen += in_bucket;
  }
  return max_seen_;
}

std::string Histogram::summary() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "p50=%.3g p90=%.3g p99=%.3g max=%.3g n=%zu",
                percentile(50), percentile(90), percentile(99), max_seen_,
                count_);
  return buf;
}

void Histogram::merge(const Histogram& other) {
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[static_cast<std::size_t>(b)] +=
        other.buckets_[static_cast<std::size_t>(b)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_seen_ = std::max(max_seen_, other.max_seen_);
}

}  // namespace softborg
