// Solver-result recycling cache (paper §3/§5: recycle execution by-products
// across the fleet — applied to the constraint solver).
//
// Across a day of proof gap closure the fleet issues thousands of
// solve_path() queries whose constraint sets are near-identical: every
// explore_subtree() re-derives the same path prefixes, and structurally
// equal branch conditions recur across programs built from the same
// templates. The cache canonicalizes each query and recycles decided
// results three ways, in lookup order:
//
//   1. Exact hit — the query's canonical form (clauses sorted and deduped,
//      variables renamed to first-occurrence order, per-variable domains
//      appended) maps to a cached decision. SAT hits rebuild the cached
//      witness in the query's variable space and re-verify it with
//      satisfies(), so they are sound even under key collision; UNSAT hits
//      rely on the 128-bit key (the ReplayCache key+check idiom).
//   2. UNSAT-core subsumption (KLEE's counterexample cache): a cached UNSAT
//      clause set that is a subset of the query's clauses proves the query
//      UNSAT — provided the query's domain box is contained in the cached
//      box for every variable the core references (an UNSAT fact about
//      x∈[0,10] says nothing about x∈[0,200]). Clause identity here is the
//      *raw* (un-renamed) literal hash: renaming is sound for whole-query
//      equality, where the domains ride along in the key, but not for
//      subset reasoning across different variable sets.
//   3. Model reuse: a cached satisfying assignment that happens to satisfy
//      the query's clauses — verified exactly with satisfies() and checked
//      against the query's domains — proves SAT with a free witness.
//
// kUnknown results are never cached: they are budget artifacts, not facts.
// Decided results are budget-independent, so a hit is exact regardless of
// the caller's SolverOptions; the only observable divergence from a fresh
// solve is returning a decision where the fresh solve would have exhausted
// its budget (strictly more complete).
//
// Witness caveat: SAT hits return *a* verified witness, not necessarily the
// witness a fresh solve would construct (model reuse and renamed exact hits
// translate another query's model). Consumers that only branch on the
// status (tree growth, certificates) are unaffected; consumers of the model
// get a different-but-valid point of the same box.
//
// Not thread-safe. Parallel closure gives each worker a snapshot copy and
// merges the copies back deterministically at the barrier (merge_from).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/state_wire.h"
#include "common/varint.h"
#include "sym/csolver.h"
#include "sym/expr.h"

namespace softborg {

struct SolverCacheConfig {
  // Exact-result entries kept before the table resets wholesale
  // (generational eviction, as in the hive's ReplayCache).
  std::size_t max_entries = 1 << 15;
  // UNSAT clause sets kept for subsumption (FIFO).
  std::size_t max_unsat_cores = 512;
  // Satisfying assignments kept for model reuse (FIFO)...
  std::size_t max_models = 64;
  // ...of which only the most recent `model_probe_limit` are tried per
  // query (each probe costs one satisfies() evaluation).
  std::size_t model_probe_limit = 8;
};

// How a query was answered.
enum class CacheLookup : std::uint8_t {
  kMiss = 0,           // fresh solve_path call
  kExactHit = 1,       // canonical key present
  kUnsatSubsumed = 2,  // cached UNSAT subset + domain containment
  kModelReused = 3,    // cached assignment satisfies the query
};

const char* cache_lookup_name(CacheLookup l);

struct SolverCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t exact_hits = 0;
  std::uint64_t unsat_subsumed = 0;
  std::uint64_t models_reused = 0;
  std::uint64_t insertions = 0;  // decided results cached
  std::uint64_t resets = 0;      // generational evictions of the exact table

  std::uint64_t hits() const {
    return exact_hits + unsat_subsumed + models_reused;
  }
  double hit_rate() const {
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits()) / static_cast<double>(lookups);
  }
};

class SolverCache {
 public:
  explicit SolverCache(SolverCacheConfig config = {});

  // Cache-through replacement for solve_path(): identical contract, plus
  // `outcome` (when non-null) reports how the query was answered. Hits
  // report SolveResult::nodes == 0 (no solver work done).
  SolveResult solve(const PathConstraint& pc,
                    const std::vector<VarDomain>& input_domains,
                    const std::vector<VarDomain>& unknown_domains = {},
                    const SolverOptions& options = {},
                    CacheLookup* outcome = nullptr);

  // Deterministic union: adopts every entry of `other` this cache lacks, in
  // `other`'s storage order (exact slots by index, rings front to back).
  // Contents only — `other`'s counters describe its own traffic and are not
  // added. This is the barrier step of parallel proof closure: workers run
  // on snapshot copies, and the copies merge back in corpus order.
  void merge_from(const SolverCache& other);

  std::size_t size() const { return exact_count_; }
  const SolverCacheStats& stats() const { return stats_; }
  const SolverCacheConfig& config() const { return config_; }

  // Durable-store serialization. The exact table is dumped slot-for-slot
  // (occupied slots with their indices) so the restored probe layout — and
  // therefore every future lookup/insert path — is byte-identical to the
  // saved cache's, across generational resets included. Counters (`resets`,
  // hits, insertions) round-trip exactly: ProofCertificates embed them.
  // load_state requires the receiving cache to be configured identically
  // (the snapshot records the config and rejects a mismatch) and validates
  // every index, status tag, and model reference; false means corrupt.
  void save_state(Bytes& out) const;
  bool load_state(StateReader& r);

  // Exact structural equality of config, stats, and all four stores —
  // the round-trip pin for the serializer (ISSUE 7 satellite).
  bool state_equals(const SolverCache& other) const;

 private:
  struct Hash128 {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    friend auto operator<=>(const Hash128&, const Hash128&) = default;
  };

  // A referenced variable with the query's domain for it.
  struct VarBox {
    std::uint8_t kind = 0;  // 0 = input, 1 = syscall unknown
    std::uint32_t index = 0;
    Value lo = 0;
    Value hi = 0;
    friend auto operator<=>(const VarBox&, const VarBox&) = default;
  };

  struct CanonicalQuery {
    std::vector<Hash128> lits;  // raw literal hashes, sorted, deduped
    std::uint64_t lit_mask = 0; // 1-word signature of `lits` (prefilter)
    std::vector<VarBox> vars;   // referenced vars + domains, sorted
    Hash128 key;                // canonical (renamed + domains) 128-bit key
    // Canonical id -> raw index, per kind (model translation).
    std::vector<std::uint32_t> input_raw;
    std::vector<std::uint32_t> unknown_raw;
  };

  // Canonical-space witness stored with exact SAT entries: inputs[i] is the
  // value of canonical input i, so a renamed twin query can translate it.
  struct CanonModel {
    std::vector<Value> inputs;
    std::vector<Value> unknowns;
    bool operator==(const CanonModel&) const = default;
  };

  static constexpr std::uint32_t kNoModel = 0xffffffffu;
  struct ExactSlot {
    std::uint64_t key = 0;    // Hash128::a; 0 marks an empty slot
    std::uint64_t check = 0;  // Hash128::b
    SolveStatus status = SolveStatus::kUnknown;
    std::uint32_t model = kNoModel;  // into canon_models_ iff kSat

    bool operator==(const ExactSlot&) const = default;
  };

  struct UnsatCore {
    std::vector<Hash128> lits;  // sorted raw literal hashes
    std::uint64_t lit_mask = 0;
    std::vector<VarBox> vars;   // domains the UNSAT proof covered
    bool operator==(const UnsatCore&) const = default;
  };

  // Two independently-seeded 64-bit hashes (FNV-1a and a multiply-xor
  // chain), both finalized with the splitmix avalanche: the pair is the
  // query key, so collision resistance has to come from genuinely
  // decorrelated passes.
  static Hash128 hash128(const Bytes& buf);

  void canonicalize(const PathConstraint& pc,
                    const std::vector<VarDomain>& input_domains,
                    const std::vector<VarDomain>& unknown_domains,
                    CanonicalQuery& q);
  // Serializes one literal pre-order with DAG backrefs. With `canon` the
  // variable indices are substituted through canon_map_; without it raw
  // indices are emitted and every variable emission is appended to
  // var_emissions_.
  void serialize_literal(const Literal& lit, bool canon, Bytes& out);

  const ExactSlot* find_exact(const Hash128& key) const;
  void insert_exact(const Hash128& key, SolveStatus status,
                    std::uint32_t model_index);
  // Rebuilds a cached canonical witness in the query's variable space and
  // verifies it (domains + satisfies). False on any mismatch.
  bool rebuild_model(const CanonicalQuery& q, const CanonModel& cm,
                     const PathConstraint& pc,
                     const std::vector<VarDomain>& input_domains,
                     const std::vector<VarDomain>& unknown_domains,
                     Assignment& out) const;
  bool subsumed_unsat(const CanonicalQuery& q) const;
  // Tries the most recent cached assignments against the query; fills `out`
  // with a full-size verified witness on success.
  bool reuse_model(const CanonicalQuery& q, const PathConstraint& pc,
                   const std::vector<VarDomain>& input_domains,
                   const std::vector<VarDomain>& unknown_domains,
                   Assignment& out) const;
  // Caches a decided fresh result (exact entry + the matching ring).
  void insert_result(const CanonicalQuery& q, const SolveResult& r);
  std::uint32_t store_canon_model(const CanonicalQuery& q,
                                  const Assignment& model);

  SolverCacheConfig config_;
  SolverCacheStats stats_;

  // Exact table: open-addressed, power-of-two sized, insert-only between
  // generational resets.
  std::vector<ExactSlot> exact_;
  std::size_t exact_count_ = 0;
  std::vector<CanonModel> canon_models_;  // referenced by exact_ slots

  std::vector<UnsatCore> unsat_cores_;  // FIFO
  std::vector<Assignment> models_;      // FIFO, raw variable space

  // Scratch for canonicalize()/serialize_literal(), reused across queries.
  CanonicalQuery query_;
  Bytes buf_;
  std::unordered_map<const ExprNode*, std::uint32_t> memo_;
  std::vector<const ExprNode*> stack_;
  std::unordered_map<std::uint64_t, std::uint32_t> canon_map_;
  std::vector<std::pair<std::uint8_t, std::uint32_t>> var_emissions_;
  std::vector<std::pair<std::size_t, std::size_t>> lit_var_ranges_;
};

}  // namespace softborg
