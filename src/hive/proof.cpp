#include "hive/proof.h"

#include <algorithm>
#include <set>

#include "common/check.h"
#include "common/log.h"
#include "minivm/interp.h"
#include "minivm/replay.h"

namespace softborg {

const char* property_name(Property p) {
  switch (p) {
    case Property::kNeverCrashes: return "never-crashes";
    case Property::kNeverDeadlocks: return "never-deadlocks";
    case Property::kAlwaysTerminates: return "always-terminates";
  }
  return "?";
}

std::string ProofCertificate::describe() const {
  std::string s = std::string(property_name(property)) + " for program " +
                  std::to_string(program.value) + ": ";
  if (publishable()) {
    s += "PROVEN over " + std::to_string(paths_total) + " paths (" +
         std::to_string(paths_from_executions) + " observed, " +
         std::to_string(paths_from_symbolic) + " symbolic, " +
         std::to_string(gaps_closed_infeasible) + " refuted gaps)";
  } else if (!holds) {
    s += "REFUTED (counterexample with " +
         std::to_string(counterexample.size()) + " decisions)";
  } else {
    s += "INCOMPLETE (" + std::to_string(paths_total) + " paths so far)";
  }
  return s;
}

namespace {

bool outcome_violates(Property property, Outcome outcome) {
  switch (property) {
    case Property::kNeverCrashes:
      return outcome == Outcome::kCrash;
    case Property::kNeverDeadlocks:
      return outcome == Outcome::kDeadlock;
    case Property::kAlwaysTerminates:
      return outcome == Outcome::kHang || outcome == Outcome::kUserKilled ||
             outcome == Outcome::kDeadlock;
  }
  return false;
}

Outcome outcome_of_terminal(PathTerminal t) {
  switch (t) {
    case PathTerminal::kOk:
      return Outcome::kOk;
    case PathTerminal::kCrash:
      return Outcome::kCrash;
    case PathTerminal::kDeadlock:
      return Outcome::kDeadlock;
    case PathTerminal::kBudget:
      return Outcome::kHang;
  }
  return Outcome::kOk;
}

}  // namespace

ProofCertificate ProofEngine::attempt(const CorpusEntry& entry,
                                      ExecTree& tree, Property property,
                                      const ProofBudget& budget,
                                      SolverCache* cache) {
  ProofCertificate cert;
  cert.id = ProofId(next_id_++);
  cert.program = entry.program.id;
  cert.property = property;
  cert.input_domain = domains_of(entry);
  cert.paths_from_executions = tree.num_paths();

  const bool single_threaded = entry.program.num_threads() == 1;
  bool bootstrap_cut_any = false;

  // Symbolic gap closure (single-threaded programs only).
  if (single_threaded) {
    ExploreOptions opt;
    opt.input_domains = cert.input_domain;
    opt.max_paths = budget.max_symbolic_paths;
    opt.solver = budget.solver;
    opt.solver_cache = cache;
    const auto account = [&cert](const ExploreStats& s) {
      cert.solver_calls += s.solver_calls;
      cert.solver_cache_hits += s.solver_cache_hits;
      cert.solver_unsat_subsumed += s.solver_unsat_subsumed;
      cert.solver_models_reused += s.solver_models_reused;
    };

    // Bootstrap: with no natural executions yet, the proof attempt is a
    // pure symbolic exploration (the "test suite" end of the spectrum is
    // empty; the prover supplies everything).
    bool bootstrap_cut = false;
    if (tree.num_paths() == 0) {
      SymbolicExecutor ex(entry.program, opt);
      for (const auto& p : ex.explore()) {
        const auto r = tree.add_path(
            p.decisions, outcome_of_terminal(p.terminal), p.crash);
        if (r.new_path) cert.paths_from_symbolic++;
      }
      account(ex.stats());
      // If exploration was cut, completion cannot be claimed; the property
      // check below still reports refutations found so far.
      bootstrap_cut = !ex.stats().complete;
      bootstrap_cut_any = bootstrap_cut;
    }

    std::size_t closures = 0;
    for (;;) {
      const auto frontiers = tree.frontier(budget.frontier_budget);
      if (tree.open_frontiers() > frontiers.size()) cert.frontier_clips++;
      if (frontiers.empty()) break;
      bool progress = false;
      for (const auto& f : frontiers) {
        if (closures >= budget.max_gap_closures) break;
        closures++;

        std::vector<SymDecision> target = f.prefix;
        target.push_back({f.site, f.direction});

        SymbolicExecutor ex(entry.program, opt);
        const auto paths = ex.explore_subtree(target);
        account(ex.stats());
        if (paths.empty() && ex.stats().complete) {
          // Direction refuted: no feasible execution goes that way.
          if (tree.mark_infeasible(f.prefix, f.site, f.direction, f.node)) {
            cert.gaps_closed_infeasible++;
            progress = true;
          }
          continue;
        }
        for (const auto& p : paths) {
          const auto r = tree.add_path(p.decisions,
                                       outcome_of_terminal(p.terminal),
                                       p.crash);
          if (r.new_path) {
            cert.paths_from_symbolic++;
            progress = true;
          }
        }
        if (!ex.stats().complete) {
          SB_LOG_DEBUG("gap closure at site %u hit budget", f.site);
        }
      }
      if (!progress || closures >= budget.max_gap_closures) break;
    }
  }

  cert.paths_total = tree.num_paths();
  cert.complete = single_threaded ? tree.complete() : false;
  if (bootstrap_cut_any) cert.complete = false;

  // Property check over all leaves we know about.
  cert.holds = true;
  for (Outcome o : {Outcome::kCrash, Outcome::kDeadlock, Outcome::kHang,
                    Outcome::kUserKilled}) {
    if (outcome_violates(property, o) && tree.paths_with_outcome(o) > 0) {
      cert.holds = false;
      cert.counterexample_outcome = o;
      if (auto path = tree.find_path_with_outcome(o)) {
        cert.counterexample = std::move(*path);
      }
    }
  }
  // For multi-threaded programs, refutation is still meaningful even though
  // completion is not claimed.
  return cert;
}

bool check_certificate(const CorpusEntry& entry, const ProofCertificate& cert,
                       std::uint64_t max_checks, std::string* reason) {
  auto fail = [&](const std::string& why) {
    if (reason != nullptr) *reason = why;
    return false;
  };
  if (!cert.publishable()) return fail("certificate is not publishable");
  if (entry.program.num_threads() != 1) {
    return fail("checker supports single-threaded programs only");
  }

  // Enumerate the input domain (row-major), bounded by max_checks: if the
  // domain is larger, stride evenly — a dense audit rather than exhaustive.
  __int128 combos = 1;
  for (const auto& d : cert.input_domain) {
    combos *= (static_cast<__int128>(d.hi) - d.lo + 1);
    if (combos > 100'000'000) break;  // avoid overflow; stride handles it
  }
  const std::uint64_t total =
      combos > static_cast<__int128>(UINT64_MAX)
          ? UINT64_MAX
          : static_cast<std::uint64_t>(combos);
  const std::uint64_t stride =
      total > max_checks ? (total + max_checks - 1) / max_checks : 1;

  std::set<std::uint64_t> distinct_paths;
  for (std::uint64_t index = 0; index < total; index += stride) {
    // Decode row-major index into concrete inputs.
    std::vector<Value> inputs;
    std::uint64_t rest = index;
    for (const auto& d : cert.input_domain) {
      const std::uint64_t width =
          static_cast<std::uint64_t>(d.hi - d.lo + 1);
      inputs.push_back(d.lo + static_cast<Value>(rest % width));
      rest /= width;
    }
    ExecConfig cfg;
    cfg.inputs = std::move(inputs);
    const auto result = execute(entry.program, cfg);
    if (outcome_violates(cert.property, result.trace.outcome)) {
      return fail("counterexample at input index " + std::to_string(index));
    }
    distinct_paths.insert(result.trace.branch_bits.hash());
  }

  if (stride == 1 && distinct_paths.size() > cert.paths_total) {
    return fail("observed " + std::to_string(distinct_paths.size()) +
                " distinct paths but certificate claims " +
                std::to_string(cert.paths_total));
  }
  return true;
}

void encode_certificate(Bytes& out, const ProofCertificate& cert) {
  put_varint(out, cert.id.value);
  put_varint(out, cert.program.value);
  put_varint(out, static_cast<std::uint64_t>(cert.property));
  put_varint(out, cert.input_domain.size());
  for (const VarDomain& d : cert.input_domain) {
    put_varint_signed(out, d.lo);
    put_varint_signed(out, d.hi);
  }
  put_varint(out, cert.paths_total);
  put_varint(out, cert.paths_from_executions);
  put_varint(out, cert.paths_from_symbolic);
  put_varint(out, cert.gaps_closed_infeasible);
  put_bool(out, cert.complete);
  put_bool(out, cert.holds);
  put_varint(out, cert.frontier_clips);
  put_varint(out, cert.counterexample.size());
  for (const SymDecision& d : cert.counterexample) {
    put_varint(out, d.site);
    put_bool(out, d.taken);
  }
  put_varint(out, static_cast<std::uint64_t>(cert.counterexample_outcome));
  put_varint(out, cert.solver_calls);
  put_varint(out, cert.solver_cache_hits);
  put_varint(out, cert.solver_unsat_subsumed);
  put_varint(out, cert.solver_models_reused);
  put_varint(out, cert.day_issued);
}

bool decode_certificate(StateReader& r, ProofCertificate& cert) {
  cert.id = ProofId(r.u64());
  cert.program = ProgramId(r.u64());
  cert.property = static_cast<Property>(r.u64_max(2));
  const std::uint64_t n_domains = r.count(2);
  cert.input_domain.clear();
  cert.input_domain.reserve(n_domains);
  for (std::uint64_t i = 0; i < n_domains && r.ok(); ++i) {
    VarDomain d;
    d.lo = r.i64();
    d.hi = r.i64();
    if (d.lo > d.hi) r.fail();
    cert.input_domain.push_back(d);
  }
  cert.paths_total = r.u64();
  cert.paths_from_executions = r.u64();
  cert.paths_from_symbolic = r.u64();
  cert.gaps_closed_infeasible = r.u64();
  cert.complete = r.boolean();
  cert.holds = r.boolean();
  cert.frontier_clips = r.u64();
  const std::uint64_t n_cex = r.count(2);
  cert.counterexample.clear();
  cert.counterexample.reserve(n_cex);
  for (std::uint64_t i = 0; i < n_cex && r.ok(); ++i) {
    SymDecision d;
    d.site = r.u32();
    d.taken = r.boolean();
    cert.counterexample.push_back(d);
  }
  cert.counterexample_outcome = static_cast<Outcome>(r.u64_max(4));
  cert.solver_calls = r.u64();
  cert.solver_cache_hits = r.u64();
  cert.solver_unsat_subsumed = r.u64();
  cert.solver_models_reused = r.u64();
  cert.day_issued = r.u64();
  return r.ok();
}

}  // namespace softborg
