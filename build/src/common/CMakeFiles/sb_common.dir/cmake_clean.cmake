file(REMOVE_RECURSE
  "CMakeFiles/sb_common.dir/bitvec.cpp.o"
  "CMakeFiles/sb_common.dir/bitvec.cpp.o.d"
  "CMakeFiles/sb_common.dir/log.cpp.o"
  "CMakeFiles/sb_common.dir/log.cpp.o.d"
  "CMakeFiles/sb_common.dir/metrics.cpp.o"
  "CMakeFiles/sb_common.dir/metrics.cpp.o.d"
  "CMakeFiles/sb_common.dir/thread_pool.cpp.o"
  "CMakeFiles/sb_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/sb_common.dir/varint.cpp.o"
  "CMakeFiles/sb_common.dir/varint.cpp.o.d"
  "libsb_common.a"
  "libsb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
