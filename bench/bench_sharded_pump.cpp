// BM_ShardedPump — serial vs. shard-parallel hive pump on a multi-program
// workload routed through the simulated network (paper §3: the hive "may be
// physically centralized … entirely distributed, or hybrid").
//
// Each iteration stands up a fresh 8-shard ShardedHive on a reliable
// 1-tick-latency SimNet, sends the full workload to the ingress, and pumps
// until drained. The serial leg (/-1) is the pre-optimization pump: routing
// decodes every wire outright and each shard ingests message-by-message
// through the per-trace pipeline (Hive::ingest_bytes). The batched legs
// (/0, /2, /8) route by header peek and drain each shard through
// ingest_batch, fanned out on `pump_threads` workers. Methodology and
// measured numbers: EXPERIMENTS.md ("BM_ShardedPump").
#include <benchmark/benchmark.h>

#include "bench_json_gbench.h"

#include "core/softborg.h"

namespace softborg {
namespace {

constexpr std::size_t kNumShards = 8;

// A day of fleet traffic: 64 endpoints x 64 runs. Each endpoint runs one
// corpus program with a fixed installed configuration (inputs drawn once per
// endpoint), re-executed with a fresh scheduler seed per run — the paper's
// redundancy model, where a huge number of endpoints keep re-walking a small
// set of paths and the hive recycles the overlap. Every wire has a unique
// trace id, so dedup passes all of them and the recycling happens in the
// replay-coalescing stage, not at the dedup gate.
const std::vector<Bytes>& fleet_workload() {
  static const std::vector<Bytes> wires = [] {
    const auto corpus = standard_corpus();
    Rng rng(29);
    std::vector<Bytes> out;
    out.reserve(64 * 64);
    for (std::size_t endpoint = 0; endpoint < 64; ++endpoint) {
      const CorpusEntry& entry = corpus[rng.next_below(corpus.size())];
      ExecConfig cfg;
      for (const auto& d : entry.domains) {
        cfg.inputs.push_back(rng.next_in(d.lo, d.hi));
      }
      for (std::size_t run = 0; run < 64; ++run) {
        cfg.seed = endpoint * 64 + run + 1;
        auto result = execute(entry.program, cfg);
        result.trace.id = TraceId(endpoint * 64 + run + 1);
        out.push_back(encode_trace(result.trace));
      }
    }
    return out;
  }();
  return wires;
}

// Arg(-1): serial pump (decode-routed, per-trace ingest_bytes). Arg(k>=0):
// shard-parallel pump with k workers (k=0 runs the batch path inline).
void BM_ShardedPump(benchmark::State& state) {
  static const std::vector<CorpusEntry> corpus = standard_corpus();
  const std::vector<Bytes>& wires = fleet_workload();
  const std::int64_t arg = state.range(0);
  NetConfig net_config;
  net_config.min_latency_ticks = 1;
  net_config.max_latency_ticks = 1;
  for (auto _ : state) {
    SimNet net(net_config);
    ShardedHiveConfig config;
    config.serial_pump = arg < 0;
    config.pump_threads = arg > 0 ? static_cast<std::size_t>(arg) : 0;
    ShardedHive hive(&corpus, kNumShards, net, config);
    const Endpoint client = net.add_endpoint();
    for (const auto& w : wires) {
      net.send(client, hive.ingress(), kMsgTrace, w);
    }
    // Round 1 delivers to the ingress and routes; round 2 delivers to the
    // shards and ingests; round 3 confirms the fleet has drained.
    for (int round = 0; round < 3; ++round) {
      net.tick();
      hive.pump(net);
    }
    benchmark::DoNotOptimize(hive.aggregate_stats().paths_merged);
    // Fleet-wide pipeline telemetry from the last iteration: how much of the
    // workload the replay-coalescing stage recycled (serial legs report 0 —
    // the per-trace pipeline replays every wire).
    const IngestStats agg = hive.aggregate_ingest_stats();
    state.counters["hit_rate"] = agg.cache_hit_rate();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wires.size()));
}
BENCHMARK(BM_ShardedPump)
    ->Arg(-1)
    ->Arg(0)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The flight-recorder overhead leg (EXPERIMENTS.md "recorder overhead"):
// identical to BM_ShardedPump/8 but with the per-thread recorder armed, so
// every SB_SPAN site and proof-closure event on the pump path pays the
// ring-buffer write. The acceptance bar is <2% versus the /8 leg above.
// Kept as a separate benchmark (not a second Arg) so the recorder-off legs'
// JSON keys stay comparable across history.
void BM_ShardedPumpRecorder(benchmark::State& state) {
  static const std::vector<CorpusEntry> corpus = standard_corpus();
  const std::vector<Bytes>& wires = fleet_workload();
  NetConfig net_config;
  net_config.min_latency_ticks = 1;
  net_config.max_latency_ticks = 1;
  obs::set_tracing_enabled(true);
  obs::Recorder::set_enabled(true);
  obs::Recorder::global().clear();
  for (auto _ : state) {
    SimNet net(net_config);
    ShardedHiveConfig config;
    config.pump_threads = 8;
    ShardedHive hive(&corpus, kNumShards, net, config);
    const Endpoint client = net.add_endpoint();
    for (const auto& w : wires) {
      net.send(client, hive.ingress(), kMsgTrace, w);
    }
    for (int round = 0; round < 3; ++round) {
      net.tick();
      hive.pump(net);
    }
    benchmark::DoNotOptimize(hive.aggregate_stats().paths_merged);
  }
  obs::Recorder::set_enabled(false);
  obs::set_tracing_enabled(false);
  obs::Recorder::global().clear();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wires.size()));
}
BENCHMARK(BM_ShardedPumpRecorder)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace softborg

int main(int argc, char** argv) {
  softborg::BenchJsonWriter json("sharded_pump", argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  softborg::JsonTeeReporter reporter(json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return json.write() ? 0 : 1;
}
