// E6 — Capture cost vs recording granularity, and coordinated sampling
// (paper §3.1).
//
// Claims under test: capture cost can be reduced by (a) recording only
// branches that depend on program-external events, and (b) coordinated
// sampling across the user community (Liblit [18]); "a recorded trace
// specifies a family of paths, but subsequent aggregation ... can narrow
// down this family".
//
// Part 1: interpreter throughput and wire bytes per execution at each
// granularity (none / tainted-only / all branches / full).
// Part 2: sampling-rate sweep — per-pod recording cost vs how well the
// aggregated site statistics still localize the buggy branch (CBI-style
// rank of the real crash predictor, site 3 of media_parser).
//
// Expected shape: tainted-only costs a small multiple of no-recording and
// far less than all-branches; with rate-r sampling per-pod cost drops ~r x
// while the bug's site keeps rank 1 until very aggressive rates.
#include <cstdio>

#include "bench_json.h"
#include "core/softborg.h"

using namespace softborg;

int main(int argc, char** argv) {
  BenchJsonWriter json("e6_recording_overhead", argc, argv);
  // ---- part 1: granularity sweep -------------------------------------------
  struct Workload {
    CorpusEntry entry;
    std::vector<Value> inputs;
  };
  std::vector<Workload> workloads;
  workloads.push_back({make_media_parser(), {20, 100}});
  workloads.push_back({make_file_copier(), {32, 8}});
  // skewed_workload has a long deterministic loop: the program where
  // "record only input-dependent branches" pays off most.
  workloads.push_back(
      {make_skewed_workload(8), {1, 1, 0, 1, 0, 1, 0, 1}});

  std::printf("# E6.1: recording granularity vs capture cost\n");
  std::printf("%-14s %-18s %-12s %-12s %-12s\n", "program", "granularity",
              "exec/sec", "bits/exec", "bytes/exec");

  for (const auto& w : workloads) {
    for (auto gran : {Granularity::kNone, Granularity::kTaintedBranches,
                      Granularity::kAllBranches, Granularity::kFull}) {
      const char* name = gran == Granularity::kNone ? "none"
                         : gran == Granularity::kTaintedBranches
                             ? "tainted-only"
                         : gran == Granularity::kAllBranches ? "all-branches"
                                                             : "full";
      const int kRuns = 20'000;
      std::uint64_t bits = 0, bytes = 0;
      Timer timer;
      for (int i = 0; i < kRuns; ++i) {
        ExecConfig cfg;
        cfg.inputs = w.inputs;
        cfg.seed = static_cast<std::uint64_t>(i) + 1;
        cfg.granularity = gran;
        const auto result = execute(w.entry.program, cfg);
        bits += result.trace.branch_bits.size();
        bytes += encode_trace(result.trace).size();
      }
      const double secs = timer.elapsed_seconds();
      std::printf("%-14s %-18s %-12.0f %-12.1f %-12.1f\n",
                  w.entry.program.name.c_str(), name, kRuns / secs,
                  static_cast<double>(bits) / kRuns,
                  static_cast<double>(bytes) / kRuns);
      json.add(w.entry.program.name + "/" + name, "exec_per_sec",
               kRuns / secs);
      json.add(w.entry.program.name + "/" + name, "bytes_per_exec",
               static_cast<double>(bytes) / kRuns);
    }
  }

  // ---- part 2: coordinated sampling ----------------------------------------
  const auto parser = make_media_parser();
  std::printf("\n# E6.2: coordinated sampling — cost vs bug localization\n");
  std::printf("%-8s %-16s %-18s %-14s\n", "rate", "obs/run(pod)",
              "crash-site rank", "crash score");

  for (std::uint32_t rate : {1u, 2u, 4u, 8u, 16u, 32u}) {
    SiteStats stats;
    std::uint64_t observations = 0, runs = 0;
    Rng rng(11);
    // 400 pods, biased toward the crash region so failures occur.
    for (std::uint64_t pod_id = 1; pod_id <= 400; ++pod_id) {
      PodConfig config;
      config.sampling_rate = rate;
      UserProfile profile;
      profile.input_prefs = {{0, 63}, {150, 255}};
      Pod pod(PodId(pod_id), parser, profile, config, rng());
      for (int run = 0; run < 10; ++run) {
        const auto pr = pod.run_once(1);
        runs++;
        if (pr.sampled) {
          observations += pr.sampled->observations.size();
          stats.add(*pr.sampled);
        }
      }
    }
    // Where does the true crash predictor (site 3: "size < 200" taken ==
    // false inside format 13) rank?
    const auto ranked = stats.ranked_sites();
    std::size_t rank = 0;
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      if (ranked[i] == 3) rank = i + 1;
    }
    std::printf("%-8u %-16.2f %-18zu %-14.3f\n", rate,
                static_cast<double>(observations) /
                    static_cast<double>(runs),
                rank, stats.failure_score(3, false));
  }
  std::printf("\n(site 3 is the planted crash predictor; rank 1 means the "
              "aggregated statistics localize the bug exactly)\n");
  return json.write() ? 0 : 1;
}
