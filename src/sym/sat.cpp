#include "sym/sat.h"

#include <algorithm>
#include <cstdlib>

#include "common/check.h"
#include "common/rng.h"

namespace softborg {

const char* sat_status_name(SatStatus s) {
  switch (s) {
    case SatStatus::kSat: return "sat";
    case SatStatus::kUnsat: return "unsat";
    case SatStatus::kUnknown: return "unknown";
  }
  return "?";
}

namespace {

// ----------------------------------------------------------------- DPLL ----

// Recursive DPLL with unit propagation. Assignment: 0 unknown, +1 true,
// -1 false.
class DpllSolver final : public SatSolver {
 public:
  explicit DpllSolver(DpllHeuristic heuristic) : heuristic_(heuristic) {}

  SatOutcome solve(const Cnf& cnf, std::uint64_t budget_ticks,
                   const std::atomic<bool>* cancel) override {
    cnf_ = &cnf;
    budget_ = budget_ticks;
    cancel_ = cancel;
    ticks_ = 0;
    aborted_ = false;
    assign_.assign(static_cast<std::size_t>(cnf.num_vars) + 1, 0);
    activity_.assign(static_cast<std::size_t>(cnf.num_vars) + 1, 0.0);
    if (heuristic_ == DpllHeuristic::kActivity) {
      // Seed activities with occurrence counts.
      for (const auto& clause : cnf.clauses) {
        for (Lit lit : clause) {
          activity_[static_cast<std::size_t>(std::abs(lit))] += 1.0;
        }
      }
    }

    SatOutcome out;
    const int verdict = search();
    out.ticks = ticks_;
    if (aborted_) {
      out.status = SatStatus::kUnknown;
    } else if (verdict == 1) {
      out.status = SatStatus::kSat;
      out.model.resize(static_cast<std::size_t>(cnf.num_vars));
      for (int v = 1; v <= cnf.num_vars; ++v) {
        out.model[static_cast<std::size_t>(v - 1)] =
            assign_[static_cast<std::size_t>(v)] >= 0;  // unassigned -> true
      }
      SB_CHECK(cnf_satisfied(cnf, out.model));
    } else {
      out.status = SatStatus::kUnsat;
    }
    return out;
  }

  std::string name() const override {
    return heuristic_ == DpllHeuristic::kActivity ? "dpll-activity"
                                                  : "dpll-negstatic";
  }

 private:
  bool out_of_budget() {
    if (ticks_ >= budget_ ||
        (cancel_ != nullptr && ((ticks_ & 0x3ff) == 0) &&
         cancel_->load(std::memory_order_relaxed))) {
      aborted_ = true;
      return true;
    }
    return false;
  }

  // Clause status under the current assignment.
  enum class CStat { kSat, kConflict, kUnit, kOpen };
  CStat clause_status(const Clause& clause, Lit* unit) {
    int unassigned = 0;
    Lit last = 0;
    for (Lit lit : clause) {
      const int v = std::abs(lit);
      const int a = assign_[static_cast<std::size_t>(v)];
      if (a == 0) {
        unassigned++;
        last = lit;
      } else if ((a > 0) == (lit > 0)) {
        return CStat::kSat;
      }
    }
    if (unassigned == 0) return CStat::kConflict;
    if (unassigned == 1) {
      *unit = last;
      return CStat::kUnit;
    }
    return CStat::kOpen;
  }

  // Returns false on conflict. Appends assigned vars to `trail`.
  bool propagate(std::vector<int>* trail) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& clause : cnf_->clauses) {
        ticks_++;
        if (out_of_budget()) return true;  // abort unwinds via aborted_
        Lit unit = 0;
        switch (clause_status(clause, &unit)) {
          case CStat::kConflict:
            return false;
          case CStat::kUnit: {
            const int v = std::abs(unit);
            assign_[static_cast<std::size_t>(v)] = unit > 0 ? 1 : -1;
            trail->push_back(v);
            if (heuristic_ == DpllHeuristic::kActivity) {
              activity_[static_cast<std::size_t>(v)] += 0.1;
            }
            changed = true;
            break;
          }
          default:
            break;
        }
      }
    }
    return true;
  }

  int pick_variable() const {
    if (heuristic_ == DpllHeuristic::kNegativeStatic) {
      for (int v = 1; v <= cnf_->num_vars; ++v) {
        if (assign_[static_cast<std::size_t>(v)] == 0) return v;
      }
      return 0;
    }
    int best = 0;
    double best_activity = -1.0;
    for (int v = 1; v <= cnf_->num_vars; ++v) {
      if (assign_[static_cast<std::size_t>(v)] == 0 &&
          activity_[static_cast<std::size_t>(v)] > best_activity) {
        best = v;
        best_activity = activity_[static_cast<std::size_t>(v)];
      }
    }
    return best;
  }

  // 1 = sat, 0 = unsat (within this subtree).
  int search() {
    std::vector<int> trail;
    const bool no_conflict = propagate(&trail);
    if (aborted_) return 0;
    if (no_conflict) {
      const int var = pick_variable();
      if (var == 0) return 1;  // fully assigned, no conflict => model
      const int first = heuristic_ == DpllHeuristic::kNegativeStatic ? -1 : 1;
      for (int phase : {first, -first}) {
        assign_[static_cast<std::size_t>(var)] = phase;
        const int sub = search();
        if (aborted_) return 0;
        if (sub == 1) return 1;
        assign_[static_cast<std::size_t>(var)] = 0;
      }
    }
    for (int v : trail) assign_[static_cast<std::size_t>(v)] = 0;
    return 0;
  }

  DpllHeuristic heuristic_;
  const Cnf* cnf_ = nullptr;
  std::uint64_t budget_ = 0;
  std::uint64_t ticks_ = 0;
  bool aborted_ = false;
  const std::atomic<bool>* cancel_ = nullptr;
  std::vector<int> assign_;
  std::vector<double> activity_;
};

// -------------------------------------------------------------- WalkSAT ----

// Standard efficient WalkSAT: occurrence lists plus incrementally
// maintained per-clause satisfied-literal counts, so a flip touches only
// the clauses containing the flipped variable. Ticks are charged per
// clause actually visited — the real cost profile of the algorithm.
class WalkSatSolver final : public SatSolver {
 public:
  WalkSatSolver(std::uint64_t seed, double noise)
      : seed_(seed), noise_(noise) {}

  SatOutcome solve(const Cnf& cnf, std::uint64_t budget_ticks,
                   const std::atomic<bool>* cancel) override {
    Rng rng(seed_);
    SatOutcome out;
    const std::size_t n = static_cast<std::size_t>(cnf.num_vars);
    const std::size_t m = cnf.clauses.size();

    // Occurrence lists.
    std::vector<std::vector<std::uint32_t>> occurs(n);
    for (std::size_t c = 0; c < m; ++c) {
      for (Lit lit : cnf.clauses[c]) {
        occurs[static_cast<std::size_t>(std::abs(lit) - 1)].push_back(
            static_cast<std::uint32_t>(c));
      }
    }

    std::vector<bool> model(n);
    std::vector<std::uint32_t> sat_count(m);
    std::vector<std::uint32_t> unsat;          // clause ids
    std::vector<std::uint32_t> unsat_pos(m);   // clause -> index in `unsat`

    std::uint64_t ticks = 0;
    auto init = [&]() {
      for (std::size_t v = 0; v < n; ++v) model[v] = rng.next_bool();
      unsat.clear();
      for (std::size_t c = 0; c < m; ++c) {
        ticks++;
        std::uint32_t count = 0;
        for (Lit lit : cnf.clauses[c]) {
          if (model[static_cast<std::size_t>(std::abs(lit) - 1)] ==
              (lit > 0)) {
            count++;
          }
        }
        sat_count[c] = count;
        if (count == 0) {
          unsat_pos[c] = static_cast<std::uint32_t>(unsat.size());
          unsat.push_back(static_cast<std::uint32_t>(c));
        }
      }
    };
    auto flip = [&](int var) {  // var is 1-based
      const std::size_t v = static_cast<std::size_t>(var - 1);
      model[v] = !model[v];
      for (std::uint32_t c : occurs[v]) {
        ticks++;
        // Does this clause now gain or lose the flipped literal?
        bool makes_true = false;
        for (Lit lit : cnf.clauses[c]) {
          if (std::abs(lit) == var) {
            makes_true = model[v] == (lit > 0);
            break;
          }
        }
        if (makes_true) {
          if (sat_count[c]++ == 0) {
            // Remove from unsat (swap with last).
            const std::uint32_t pos = unsat_pos[c];
            unsat[pos] = unsat.back();
            unsat_pos[unsat[pos]] = pos;
            unsat.pop_back();
          }
        } else {
          if (--sat_count[c] == 0) {
            unsat_pos[c] = static_cast<std::uint32_t>(unsat.size());
            unsat.push_back(c);
          }
        }
      }
    };
    // break(var) = clauses that would become unsatisfied if var flipped.
    auto break_count = [&](int var) {
      const std::size_t v = static_cast<std::size_t>(var - 1);
      std::uint64_t breaks = 0;
      for (std::uint32_t c : occurs[v]) {
        ticks++;
        if (sat_count[c] != 1) continue;
        // Broken iff the single satisfying literal is this variable's.
        for (Lit lit : cnf.clauses[c]) {
          if (std::abs(lit) == var &&
              model[v] == (lit > 0)) {
            breaks++;
            break;
          }
        }
      }
      return breaks;
    };

    init();
    std::uint64_t since_restart = 0;
    const std::uint64_t restart_interval = 40 * std::max<std::uint64_t>(n, 1);
    while (ticks < budget_ticks) {
      if (cancel != nullptr && (ticks & 0x3ff) < 8 &&
          cancel->load(std::memory_order_relaxed)) {
        break;
      }
      if (unsat.empty()) {
        out.status = SatStatus::kSat;
        out.model = std::move(model);
        out.ticks = ticks;
        SB_CHECK(cnf_satisfied(cnf, out.model));
        return out;
      }
      if (++since_restart > restart_interval) {
        since_restart = 0;
        init();
        continue;
      }
      const Clause& clause = cnf.clauses[unsat[rng.next_below(unsat.size())]];
      int flip_var;
      if (rng.next_bool(noise_)) {
        flip_var = std::abs(clause[rng.next_below(clause.size())]);
      } else {
        flip_var = std::abs(clause[0]);
        std::uint64_t best = UINT64_MAX;
        for (Lit lit : clause) {
          const int v = std::abs(lit);
          const std::uint64_t b = break_count(v);
          if (b < best) {
            best = b;
            flip_var = v;
          }
        }
      }
      flip(flip_var);
      ticks++;
    }
    out.status = SatStatus::kUnknown;  // local search can never prove UNSAT
    out.ticks = std::min(ticks, budget_ticks);
    return out;
  }

  std::string name() const override { return "walksat"; }

 private:
  std::uint64_t seed_;
  double noise_;
};

}  // namespace

std::unique_ptr<SatSolver> make_dpll_solver(DpllHeuristic heuristic) {
  return std::make_unique<DpllSolver>(heuristic);
}

std::unique_ptr<SatSolver> make_walksat_solver(std::uint64_t seed,
                                               double noise) {
  return std::make_unique<WalkSatSolver>(seed, noise);
}

std::vector<std::unique_ptr<SatSolver>> make_standard_portfolio(
    std::uint64_t seed) {
  std::vector<std::unique_ptr<SatSolver>> solvers;
  solvers.push_back(make_dpll_solver(DpllHeuristic::kActivity));
  solvers.push_back(make_dpll_solver(DpllHeuristic::kNegativeStatic));
  solvers.push_back(make_walksat_solver(seed));
  return solvers;
}

}  // namespace softborg
