// Metrics primitives used by experiments and the hive's online statistics:
// streaming mean/variance, log-bucketed histograms, and a wall-clock timer.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace softborg {

// Welford streaming accumulator: mean, variance, min, max.
class StatAccumulator {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }
  void merge(const StatAccumulator& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Histogram with exponentially sized buckets: [0,1), [1,2), [2,4), [4,8)...
// Good enough for latency/size distributions across many orders of magnitude.
// percentile() interpolates linearly within the hit bucket (clamped to the
// largest value actually seen), so exported p50/p90/p99 are not quantized up
// to the bucket's power-of-two upper bound.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void add(double value);
  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double max_seen() const { return max_seen_; }
  double percentile(double p) const;  // p in [0,100]
  std::string summary() const;        // "p50=.. p90=.. p99=.. max=.."
  void merge(const Histogram& other);
  void reset();

  // Bucket b covers [bucket_lower(b), bucket_upper(b)); exporters render
  // these as cumulative `le` bounds.
  const std::vector<std::uint64_t>& bucket_counts() const { return buckets_; }
  static double bucket_lower(int b);
  static double bucket_upper(int b);

 private:
  static int bucket_for(double v);

  std::vector<std::uint64_t> buckets_ = std::vector<std::uint64_t>(kBuckets, 0);
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double max_seen_ = 0.0;
};

// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }
  double elapsed_us() const { return elapsed_seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace softborg
