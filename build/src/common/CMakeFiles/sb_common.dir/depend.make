# Empty dependencies file for sb_common.
# This may be replaced when dependencies are built.
