#include "store/store.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <cstring>

#include "common/fsio.h"
#include "common/log.h"
#include "common/state_wire.h"
#include "obs/registry.h"
#include "obs/span.h"

namespace softborg::store {

namespace {

constexpr char kPartMagic[4] = {'S', 'B', 'P', 'T'};
constexpr char kManifestMagic[4] = {'S', 'B', 'M', 'F'};
constexpr std::size_t kChecksumBytes = 8;
constexpr int kGenerationsKept = 2;

void bump(const char* name, std::uint64_t n = 1) {
  if (obs::enabled()) obs::MetricsRegistry::global().counter(name).add(n);
}

void set_err(std::string* err, std::string msg) {
  if (err != nullptr) *err = std::move(msg);
}

std::string gen_name(std::uint64_t seq) {
  return "gen-" + std::to_string(seq);
}

// Fixed-width trailing checksums: a varint read backwards is ambiguous.
void put_checksum(Bytes& out, std::uint64_t sum) {
  for (int i = 0; i < 8; ++i) out.push_back(std::uint8_t(sum >> (8 * i)));
}

std::uint64_t get_checksum(const Bytes& buf, std::size_t pos) {
  std::uint64_t sum = 0;
  for (int i = 0; i < 8; ++i) sum |= std::uint64_t(buf[pos + i]) << (8 * i);
  return sum;
}

// "gen-<digits>" -> seq; nullopt for anything else (including empty digits,
// leading zeros are accepted).
std::optional<std::uint64_t> parse_gen(const std::string& name) {
  if (name.size() <= 4 || name.compare(0, 4, "gen-") != 0) return std::nullopt;
  std::uint64_t seq = 0;
  for (std::size_t i = 4; i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    if (seq > (UINT64_MAX - std::uint64_t(c - '0')) / 10) return std::nullopt;
    seq = seq * 10 + std::uint64_t(c - '0');
  }
  return seq;
}

bool ensure_dir(const std::string& path, std::string* err) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return true;
  if (errno == ENOENT) {
    // Create missing parents first (a distributed shard's snapshot dir is
    // typically nested, e.g. <fleet-root>/shard3).
    const auto slash = path.find_last_of('/');
    if (slash != std::string::npos && slash > 0 &&
        ensure_dir(path.substr(0, slash), err) &&
        (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST)) {
      return true;
    }
  }
  set_err(err, "mkdir " + path + ": " + std::strerror(errno));
  return false;
}

// Removes every regular file in `dir`, then the directory itself. Best
// effort: pruning old generations must never fail a save.
void remove_dir_tree(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d != nullptr) {
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      (void)::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  (void)::rmdir(dir.c_str());
}

std::vector<std::uint64_t> list_generations(const std::string& dir) {
  std::vector<std::uint64_t> seqs;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return seqs;
  while (dirent* e = ::readdir(d)) {
    if (auto seq = parse_gen(e->d_name)) seqs.push_back(*seq);
  }
  ::closedir(d);
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

// CI crash-injection hook: SOFTBORG_STORE_CRASH=parts kills the process
// after the part files but before the manifest; =manifest kills it after the
// manifest but before the CURRENT repoint. Both crash points must leave the
// previous generation resumable — the kill -9 CI leg pins exactly that.
void maybe_crash(const char* point) {
  const char* want = std::getenv("SOFTBORG_STORE_CRASH");
  if (want != nullptr && std::strcmp(want, point) == 0) {
    SB_CLOG_WARN("store", "crash injection at '%s'", point);
    ::raise(SIGKILL);
  }
}

struct ManifestEntry {
  std::string name;
  std::uint64_t payload_len = 0;
  std::uint64_t checksum = 0;
};

Bytes encode_part_file(const Part& part) {
  Bytes buf(kPartMagic, kPartMagic + 4);
  put_varint(buf, kFormatVersion);
  put_str(buf, part.name);
  put_blob(buf, part.payload);
  put_checksum(buf, fnv1a64(buf.data(), buf.size()));
  return buf;
}

Bytes encode_manifest(std::uint64_t seq,
                      const std::vector<ManifestEntry>& entries) {
  Bytes buf(kManifestMagic, kManifestMagic + 4);
  put_varint(buf, kFormatVersion);
  put_varint(buf, seq);
  put_varint(buf, entries.size());
  for (const ManifestEntry& e : entries) {
    put_str(buf, e.name);
    put_varint(buf, e.payload_len);
    put_varint(buf, e.checksum);
  }
  put_checksum(buf, fnv1a64(buf.data(), buf.size()));
  return buf;
}

// Shared preamble validation for part files and the manifest: minimum size,
// trailing self-checksum, leading magic. On success returns a StateReader
// positioned after the magic whose buffer excludes the checksum.
bool check_framing(const Bytes& buf, const char magic[4], const char* what,
                   std::string* err) {
  if (buf.size() < 4 + kChecksumBytes) {
    set_err(err, std::string(what) + ": too short");
    return false;
  }
  const std::size_t body = buf.size() - kChecksumBytes;
  if (fnv1a64(buf.data(), body) != get_checksum(buf, body)) {
    set_err(err, std::string(what) + ": checksum mismatch");
    return false;
  }
  if (std::memcmp(buf.data(), magic, 4) != 0) {
    set_err(err, std::string(what) + ": bad magic");
    return false;
  }
  return true;
}

std::optional<Snapshot> read_snapshot_impl(const std::string& dir,
                                           std::string* err) {
  Bytes current;
  if (!read_file(dir + "/CURRENT", current, 256)) {
    set_err(err, "no CURRENT file in " + dir);
    return std::nullopt;
  }
  std::string current_name(current.begin(), current.end());
  if (!current_name.empty() && current_name.back() == '\n')
    current_name.pop_back();
  const auto seq = parse_gen(current_name);
  if (!seq) {
    set_err(err, "CURRENT is malformed");
    return std::nullopt;
  }
  const std::string gen_dir = dir + "/" + gen_name(*seq);

  Bytes mbuf;
  if (!read_file(gen_dir + "/MANIFEST", mbuf)) {
    set_err(err, "missing manifest in " + gen_dir);
    return std::nullopt;
  }
  bump("store.bytes_read_total", mbuf.size());
  if (!check_framing(mbuf, kManifestMagic, "manifest", err)) {
    return std::nullopt;
  }
  // Shrink the reader's world to exclude the checksum so done() means
  // "consumed exactly the manifest body".
  Bytes mbody(mbuf.begin(),
              mbuf.end() - static_cast<std::ptrdiff_t>(kChecksumBytes));
  StateReader r(mbody, 4);
  const std::uint64_t version = r.u64();
  if (r.ok() && version > kFormatVersion) {
    // Forward version skew: written by a future binary. Refuse outright —
    // guessing at an unknown layout is exactly the UB this layer exists to
    // prevent.
    set_err(err, "manifest format version " + std::to_string(version) +
                     " is newer than supported " +
                     std::to_string(kFormatVersion));
    return std::nullopt;
  }
  if (r.u64() != *seq) r.fail();  // manifest seq must match CURRENT
  const std::uint64_t n_parts = r.count(3);
  std::vector<ManifestEntry> entries;
  entries.reserve(n_parts);
  for (std::uint64_t i = 0; i < n_parts && r.ok(); ++i) {
    ManifestEntry e;
    r.str(e.name);
    e.payload_len = r.u64();
    e.checksum = r.u64();
    entries.push_back(std::move(e));
  }
  if (!r.done()) {
    set_err(err, "manifest body is malformed");
    return std::nullopt;
  }

  Snapshot snap;
  snap.seq = *seq;
  for (const ManifestEntry& e : entries) {
    if (e.name.empty() || e.name == "MANIFEST" ||
        e.name.find('/') != std::string::npos) {
      set_err(err, "manifest names illegal part '" + e.name + "'");
      return std::nullopt;
    }
    Bytes pbuf;
    if (!read_file(gen_dir + "/" + e.name, pbuf)) {
      set_err(err, "missing part " + e.name);
      return std::nullopt;
    }
    bump("store.bytes_read_total", pbuf.size());
    if (!check_framing(pbuf, kPartMagic, e.name.c_str(), err)) {
      return std::nullopt;
    }
    Bytes pbody(pbuf.begin(),
                pbuf.end() - static_cast<std::ptrdiff_t>(kChecksumBytes));
    StateReader pr(pbody, 4);
    if (pr.u64() > kFormatVersion) pr.fail();
    std::string name;
    Bytes payload;
    pr.str(name);
    pr.blob(payload);
    if (!pr.done() || name != e.name || payload.size() != e.payload_len ||
        fnv1a64(payload.data(), payload.size()) != e.checksum) {
      set_err(err, "part " + e.name + " does not match its manifest entry");
      return std::nullopt;
    }
    if (!snap.parts.emplace(e.name, std::move(payload)).second) {
      set_err(err, "manifest lists part " + e.name + " twice");
      return std::nullopt;
    }
  }
  return snap;
}

}  // namespace

bool write_snapshot(const std::string& dir, std::uint64_t seq,
                    const std::vector<Part>& parts, std::string* err) {
  SB_SPAN("store.save");
  if (!ensure_dir(dir, err)) return false;
  const std::string gen_dir = dir + "/" + gen_name(seq);
  // A directory for this seq can only be a leftover from a crashed or failed
  // earlier attempt (CURRENT never pointed at it); start it clean.
  remove_dir_tree(gen_dir);
  if (!ensure_dir(gen_dir, err)) return false;

  std::uint64_t bytes = 0;
  std::vector<ManifestEntry> entries;
  entries.reserve(parts.size());
  for (const Part& part : parts) {
    const Bytes buf = encode_part_file(part);
    if (!atomic_write_file(gen_dir + "/" + part.name, buf.data(), buf.size(),
                           err)) {
      return false;
    }
    bytes += buf.size();
    entries.push_back({part.name, part.payload.size(),
                       fnv1a64(part.payload.data(), part.payload.size())});
  }
  maybe_crash("parts");

  const Bytes manifest = encode_manifest(seq, entries);
  if (!atomic_write_file(gen_dir + "/MANIFEST", manifest.data(),
                         manifest.size(), err)) {
    return false;
  }
  bytes += manifest.size();
  maybe_crash("manifest");

  // The commit point: once CURRENT names the new generation, readers switch
  // to it; until then they keep loading the previous one.
  const std::string current = gen_name(seq) + "\n";
  if (!atomic_write_file(dir + "/CURRENT", current.data(), current.size(),
                         err)) {
    return false;
  }
  bytes += current.size();

  std::vector<std::uint64_t> seqs = list_generations(dir);
  if (seqs.size() > kGenerationsKept) {
    for (std::size_t i = 0; i + kGenerationsKept < seqs.size(); ++i) {
      if (seqs[i] != seq) remove_dir_tree(dir + "/" + gen_name(seqs[i]));
    }
  }

  bump("store.snapshot_saves_total");
  bump("store.bytes_written_total", bytes);
  return true;
}

std::optional<Snapshot> read_snapshot(const std::string& dir,
                                      std::string* err) {
  SB_SPAN("store.load");
  std::string local_err;
  auto snap = read_snapshot_impl(dir, &local_err);
  if (!snap) {
    bump("store.validation_rejects_total");
    SB_CLOG_WARN("store", "rejecting snapshot in %s: %s", dir.c_str(),
                 local_err.c_str());
    set_err(err, std::move(local_err));
    return std::nullopt;
  }
  bump("store.snapshot_loads_total");
  return snap;
}

}  // namespace softborg::store
